// Serving layer: queue/batcher policy semantics, weight-tile residency
// accounting, and the discrete-event Server's determinism contract —
// identical (config, seed) must give an identical request trace and
// identical p50/p95/p99 on any host thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "core/tensor_core.hpp"
#include "nn/backend.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/latency_stats.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"

namespace {

using namespace ptc;
using namespace ptc::serve;

Request make_request(std::size_t id, const std::string& model,
                     double arrival) {
  Request request;
  request.id = id;
  request.tenant = std::string("t");
  request.model = model;
  request.arrival = arrival;
  request.input = {0.5, 0.25};
  return request;
}

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

TEST(RequestQueue, FifoPerModelWithDeterministicModelOrder) {
  RequestQueue queue;
  queue.push(make_request(0, "b", 1.0));
  queue.push(make_request(1, "a", 2.0));
  queue.push(make_request(2, "b", 3.0));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.size("b"), 2u);
  EXPECT_EQ(queue.models(), (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(queue.oldest_arrival("b"), 1.0);

  const std::vector<Request> popped = queue.pop("b", 8);
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_EQ(popped[0].id, 0u);
  EXPECT_EQ(popped[1].id, 2u);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.models(), (std::vector<std::string>{"a"}));
}

TEST(RequestQueue, RejectsOutOfOrderPushes) {
  RequestQueue queue;
  queue.push(make_request(0, "a", 5.0));
  EXPECT_THROW(queue.push(make_request(1, "a", 4.0)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// DynamicBatcher policy semantics
// ---------------------------------------------------------------------------

TEST(DynamicBatcher, MaxBatchClosesTheBatchEarly) {
  DynamicBatcher batcher({.max_batch = 3, .max_wait = BatchPolicy::kNoTimeout});
  batcher.enqueue(make_request(0, "m", 0.0));
  batcher.enqueue(make_request(1, "m", 1.0));
  // Two of three: under kNoTimeout nothing would ever close this batch.
  EXPECT_TRUE(std::isinf(batcher.next_ready_time(10.0)));
  EXPECT_TRUE(batcher.pop_ready(10.0, "").empty());

  batcher.enqueue(make_request(2, "m", 2.0));
  EXPECT_DOUBLE_EQ(batcher.next_ready_time(10.0), 10.0);
  const std::vector<Request> batch = batcher.pop_ready(10.0, "");
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 0u);  // FIFO preserved
  EXPECT_EQ(batch[1].id, 1u);
  EXPECT_EQ(batch[2].id, 2u);
  EXPECT_FALSE(batcher.has_pending());
}

TEST(DynamicBatcher, MaxWaitTimeoutFires) {
  DynamicBatcher batcher({.max_batch = 8, .max_wait = 2.0});
  batcher.enqueue(make_request(0, "m", 1.0));
  EXPECT_DOUBLE_EQ(batcher.next_ready_time(1.0), 3.0);
  EXPECT_TRUE(batcher.pop_ready(2.5, "").empty());  // not yet
  const std::vector<Request> batch = batcher.pop_ready(3.0, "");
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 0u);
}

TEST(DynamicBatcher, ZeroWaitDispatchesWhateverIsQueued) {
  DynamicBatcher batcher({.max_batch = 8, .max_wait = 0.0});
  batcher.enqueue(make_request(0, "m", 4.0));
  batcher.enqueue(make_request(1, "m", 4.5));
  EXPECT_DOUBLE_EQ(batcher.next_ready_time(5.0), 5.0);
  EXPECT_EQ(batcher.pop_ready(5.0, "").size(), 2u);
}

TEST(DynamicBatcher, PrefersTheResidentModel) {
  DynamicBatcher batcher({.max_batch = 2, .max_wait = BatchPolicy::kNoTimeout});
  batcher.enqueue(make_request(0, "a", 0.0));
  batcher.enqueue(make_request(1, "b", 0.5));
  batcher.enqueue(make_request(2, "a", 1.0));
  batcher.enqueue(make_request(3, "b", 1.5));
  // Both batches closed; "a" has the older head, but "b" is resident.
  std::vector<Request> batch = batcher.pop_ready(2.0, "b");
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].model, "b");
  // No residency preference left: FIFO fairness picks "a".
  batch = batcher.pop_ready(2.0, "b");
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].model, "a");
}

TEST(DynamicBatcher, DrainFlushesPartialBatches) {
  DynamicBatcher batcher({.max_batch = 8, .max_wait = BatchPolicy::kNoTimeout});
  batcher.enqueue(make_request(0, "m", 0.0));
  batcher.enqueue(make_request(1, "m", 1.0));
  EXPECT_TRUE(batcher.pop_ready(100.0, "").empty());
  EXPECT_EQ(batcher.pop_ready(100.0, "", /*drain=*/true).size(), 2u);
}

TEST(DynamicBatcher, RejectsBadPolicy) {
  EXPECT_THROW(DynamicBatcher({.max_batch = 0}), std::invalid_argument);
  EXPECT_THROW(DynamicBatcher({.max_batch = 1, .max_wait = -1.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ModelRegistry: tile accounting and residency
// ---------------------------------------------------------------------------

TEST(ModelRegistry, CountsTilePassesFromLayerGeometry) {
  runtime::Accelerator accelerator({.cores = 4});
  ModelRegistry registry(accelerator);
  Rng rng(1);
  registry.add("compact", nn::Mlp(32, 16, 10, rng));  // 2 + 1 tiles
  registry.add("wide", nn::Mlp(64, 64, 10, rng));     // 16 + 4 tiles

  EXPECT_TRUE(registry.contains("compact"));
  EXPECT_EQ(registry.input_width("compact"), 32u);
  EXPECT_EQ(registry.passes("compact"), 3u);
  EXPECT_TRUE(registry.fits_resident("compact"));
  EXPECT_EQ(registry.passes("wide"), 20u);
  EXPECT_FALSE(registry.fits_resident("wide"));
  EXPECT_THROW(registry.passes("missing"), std::invalid_argument);
  EXPECT_THROW(registry.add("compact", nn::Mlp(8, 8, 2, rng)),
               std::invalid_argument);
}

TEST(ModelRegistry, ConsecutiveBatchesOfAFittingModelRunWarm) {
  runtime::Accelerator accelerator({.cores = 4});
  ModelRegistry registry(accelerator);
  Rng rng(2);
  registry.add("compact", nn::Mlp(32, 16, 10, rng));
  registry.add("other", nn::Mlp(32, 16, 10, rng));
  const Matrix x = random_activations(2, 32, rng);

  const BatchDispatch cold = registry.run_batch("compact", x);
  EXPECT_EQ(cold.passes, 3u);
  EXPECT_EQ(cold.warm_passes, 0u);
  EXPECT_EQ(registry.resident_model(), "compact");

  const BatchDispatch warm = registry.run_batch("compact", x);
  EXPECT_EQ(warm.warm_passes, 3u);
  EXPECT_LT(warm.latency, cold.latency);  // reloads skipped
  EXPECT_EQ(warm.logits.max_abs_diff(cold.logits), 0.0);

  // A model switch evicts the residency: cold again.
  EXPECT_EQ(registry.run_batch("other", x).warm_passes, 0u);
  EXPECT_EQ(registry.run_batch("compact", x).warm_passes, 0u);
}

TEST(ModelRegistry, OversizedModelNeverClaimsResidency) {
  runtime::Accelerator accelerator({.cores = 4});
  ModelRegistry registry(accelerator);
  Rng rng(3);
  registry.add("wide", nn::Mlp(64, 64, 10, rng));
  const Matrix x = random_activations(1, 64, rng);
  registry.run_batch("wide", x);
  EXPECT_EQ(registry.resident_model(), "");
  EXPECT_EQ(registry.run_batch("wide", x).warm_passes, 0u);
}

TEST(ModelRegistry, LogitsMatchTheSingleCorePhotonicBackend) {
  Rng rng(4);
  nn::Mlp mlp(32, 16, 10, rng);
  const Matrix x = random_activations(3, 32, rng);

  core::TensorCore single_core;
  nn::PhotonicBackend single(single_core);
  const Matrix expected = mlp.forward(single, x);

  runtime::Accelerator accelerator({.cores = 4});
  ModelRegistry registry(accelerator);
  registry.add("m", std::move(mlp));
  const BatchDispatch dispatch = registry.run_batch("m", x);
  EXPECT_EQ(dispatch.logits.max_abs_diff(expected), 0.0);
}

// ---------------------------------------------------------------------------
// Accelerator batch-cost hook
// ---------------------------------------------------------------------------

TEST(BatchCost, ColdBatchMatchesTheMatmulMakespan) {
  Rng rng(5);
  runtime::Accelerator accelerator({.cores = 4});
  const Matrix x = random_activations(4, 32, rng);
  const Matrix w = random_signed(32, 16, rng);
  accelerator.matmul(x, w);  // 2 tile passes
  const runtime::BatchCost cost = accelerator.batch_cost(2, 0, 4);
  EXPECT_DOUBLE_EQ(cost.latency, accelerator.stats().makespan);
  EXPECT_DOUBLE_EQ(cost.busy, accelerator.stats().busy_time);
  EXPECT_EQ(cost.reloads, 2u);
}

TEST(BatchCost, WarmPassesSkipTheReload) {
  runtime::Accelerator accelerator({.cores = 4});
  const runtime::BatchCost cold = accelerator.batch_cost(3, 0, 8);
  const runtime::BatchCost warm = accelerator.batch_cost(3, 3, 8);
  EXPECT_LT(warm.latency, cold.latency);
  EXPECT_EQ(warm.reloads, 0u);
  EXPECT_DOUBLE_EQ(warm.reload_time, 0.0);
  EXPECT_GT(cold.reload_time, 0.0);

  EXPECT_DOUBLE_EQ(accelerator.batch_cost(0, 0, 8).latency, 0.0);
  EXPECT_THROW(accelerator.batch_cost(2, 3, 8), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LoadGenerator
// ---------------------------------------------------------------------------

TEST(LoadGenerator, TraceIsSortedDeterministicAndComplete) {
  runtime::Accelerator accelerator({.cores = 2});
  ModelRegistry registry(accelerator);
  Rng rng(6);
  registry.add("m", nn::Mlp(32, 16, 10, rng));

  const std::vector<TenantConfig> tenants{
      {.name = "alice", .model = "m", .rate = 1e8, .requests = 40},
      {.name = "bob", .model = "m", .rate = 3e8, .requests = 60},
  };
  const LoadGenerator generator(tenants, 1234);
  const std::vector<Request> a = generator.generate(registry);
  const std::vector<Request> b = generator.generate(registry);

  ASSERT_EQ(a.size(), 100u);
  std::size_t alice = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].input.size(), 32u);
    if (i > 0) {
      EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    }
    if (a[i].tenant == "alice") ++alice;
    // Bit-identical regeneration.
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].input, b[i].input);
  }
  EXPECT_EQ(alice, 40u);

  // A different seed moves the arrivals.
  const std::vector<Request> c =
      LoadGenerator(tenants, 99).generate(registry);
  EXPECT_NE(a.front().arrival, c.front().arrival);
}

TEST(LoadGenerator, MeanInterArrivalTracksTheRate) {
  runtime::Accelerator accelerator({.cores = 2});
  ModelRegistry registry(accelerator);
  Rng rng(7);
  registry.add("m", nn::Mlp(32, 16, 10, rng));
  const LoadGenerator generator(
      {{.name = "t", .model = "m", .rate = 1e9, .requests = 4000}}, 5);
  const std::vector<Request> trace = generator.generate(registry);
  const double mean_gap = trace.back().arrival / 4000.0;
  EXPECT_NEAR(mean_gap, 1e-9, 0.05e-9);
}

TEST(LoadGenerator, RejectsBadConfigs) {
  EXPECT_THROW(LoadGenerator({}, 1), std::invalid_argument);
  EXPECT_THROW(
      LoadGenerator({{.name = "t", .model = "m", .rate = 0.0}}, 1),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Server: the discrete-event loop
// ---------------------------------------------------------------------------

struct Fixture {
  runtime::Accelerator accelerator;
  ModelRegistry registry;
  Server server;

  explicit Fixture(std::size_t cores = 4, std::size_t threads = 0)
      : accelerator({.cores = cores, .threads = threads}),
        registry(accelerator),
        server(registry) {
    Rng rng(2026);
    registry.add("compact", nn::Mlp(32, 16, 10, rng));
    registry.add("wide", nn::Mlp(64, 64, 10, rng));
  }

  std::vector<Request> trace(const std::string& model, double rate,
                             std::size_t count, std::uint64_t seed = 11) {
    return LoadGenerator(
               {{.name = "t", .model = model, .rate = rate, .requests = count}},
               seed)
        .generate(registry);
  }
};

TEST(Server, FixedBatchPolicyFormsFullBatchesAndKeepsFifo) {
  Fixture f;
  const auto requests = f.trace("wide", 1e12, 8);  // saturating arrivals
  const ServeReport report =
      f.server.run(requests, {.max_batch = 4,
                              .max_wait = BatchPolicy::kNoTimeout});

  ASSERT_EQ(report.batches.size(), 2u);
  EXPECT_EQ(report.batches[0].size, 4u);
  EXPECT_EQ(report.batches[1].size, 4u);
  ASSERT_EQ(report.requests.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(report.requests[i].id, i);  // FIFO order survives batching
    EXPECT_GE(report.requests[i].queue_wait(), 0.0);
    EXPECT_GT(report.requests[i].service(), 0.0);
  }
  // Batches serialize on the single fleet.
  EXPECT_GE(report.batches[1].dispatch, report.batches[0].completion);
  EXPECT_DOUBLE_EQ(report.makespan, report.batches[1].completion);
  EXPECT_GT(report.energy, 0.0);
  EXPECT_GT(report.throughput(), 0.0);
}

TEST(Server, DrainFlushesLeftoversOfAFixedBatchPolicy) {
  Fixture f;
  const auto requests = f.trace("compact", 1e11, 5);
  const ServeReport report =
      f.server.run(requests, {.max_batch = 4,
                              .max_wait = BatchPolicy::kNoTimeout});
  ASSERT_EQ(report.batches.size(), 2u);
  EXPECT_EQ(report.batches[0].size, 4u);
  EXPECT_EQ(report.batches[1].size, 1u);  // flushed, not stranded
  EXPECT_EQ(report.requests.size(), 5u);
}

TEST(Server, MaxWaitBoundsTheQueueDelayOfSparseTraffic) {
  Fixture f;
  // Mean gap 10 us >> max_wait + service: every request rides alone and
  // dispatches exactly when its co-batching window expires.
  const auto requests = f.trace("compact", 1e5, 6);
  const double max_wait = 100e-9;
  const ServeReport report =
      f.server.run(requests, {.max_batch = 8, .max_wait = max_wait});
  ASSERT_EQ(report.batches.size(), 6u);
  for (const RequestRecord& record : report.requests) {
    // (arrival + max_wait) - arrival rounds in the last ulp of the large
    // arrival timestamps; the bound itself is exact.
    EXPECT_NEAR(record.queue_wait(), max_wait, 1e-18);
  }
  EXPECT_NEAR(report.queue_wait.max, max_wait, 1e-18);
}

TEST(Server, WarmResidencyAppearsInTheTraceAndShortensService) {
  Fixture f;
  const auto requests = f.trace("compact", 1e12, 12);
  const ServeReport report =
      f.server.run(requests, {.max_batch = 4,
                              .max_wait = BatchPolicy::kNoTimeout});
  ASSERT_EQ(report.batches.size(), 3u);
  EXPECT_EQ(report.batches[0].warm_passes, 0u);
  EXPECT_EQ(report.batches[1].warm_passes, report.batches[1].passes);
  EXPECT_EQ(report.batches[2].warm_passes, report.batches[2].passes);
  const double cold_service =
      report.batches[0].completion - report.batches[0].dispatch;
  const double warm_service =
      report.batches[1].completion - report.batches[1].dispatch;
  EXPECT_LT(warm_service, cold_service);
  EXPECT_DOUBLE_EQ(report.warm_fraction(), 2.0 / 3.0);
}

TEST(Server, TraceAndTailsAreIdenticalAcrossRunsAndThreadCounts) {
  ServeReport reports[2];
  const std::size_t threads[2] = {1, 5};
  for (int i = 0; i < 2; ++i) {
    Fixture f(4, threads[i]);
    const auto requests = f.trace("wide", 5e8, 48, 77);
    reports[i] = f.server.run(requests, {.max_batch = 8, .max_wait = 10e-9});
  }
  const ServeReport& a = reports[0];
  const ServeReport& b = reports[1];
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    EXPECT_EQ(a.batches[i].size, b.batches[i].size);
    EXPECT_DOUBLE_EQ(a.batches[i].dispatch, b.batches[i].dispatch);
    EXPECT_DOUBLE_EQ(a.batches[i].completion, b.batches[i].completion);
  }
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_EQ(a.requests[i].predicted, b.requests[i].predicted);
    EXPECT_DOUBLE_EQ(a.requests[i].completion, b.requests[i].completion);
  }
  EXPECT_DOUBLE_EQ(a.total.p50, b.total.p50);
  EXPECT_DOUBLE_EQ(a.total.p95, b.total.p95);
  EXPECT_DOUBLE_EQ(a.total.p99, b.total.p99);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

TEST(Server, DynamicBatchingSustainsAtLeastFourTimesBatchOneThroughput) {
  // The acceptance bar: at the same saturating arrival rate, dynamic
  // batching must push >= 4x the throughput of one-request batches on a
  // streaming-regime model (tiles exceed the fleet, so every batch pays
  // its reloads and amortization is the whole game).
  Fixture one;
  const ServeReport batch1 = one.server.run(
      one.trace("wide", 1e12, 48), {.max_batch = 1, .max_wait = 0.0});
  Fixture many;
  const ServeReport dynamic = many.server.run(
      many.trace("wide", 1e12, 48),
      {.max_batch = 16, .max_wait = BatchPolicy::kNoTimeout});

  ASSERT_GT(batch1.throughput(), 0.0);
  EXPECT_GE(dynamic.throughput() / batch1.throughput(), 4.0);
  // And the tail stays bounded: every request completed, p99 is finite.
  EXPECT_EQ(dynamic.total.count, 48u);
  EXPECT_TRUE(std::isfinite(dynamic.total.p99));
  EXPECT_GT(dynamic.total.p99, 0.0);
}

TEST(Server, MultiTenantRunServesEveryTenantAndSplitsStats) {
  Fixture f;
  const LoadGenerator generator(
      {{.name = "alice", .model = "compact", .rate = 4e8, .requests = 20},
       {.name = "bob", .model = "wide", .rate = 2e8, .requests = 10}},
      42);
  const ServeReport report = f.server.run(
      generator.generate(f.registry), {.max_batch = 8, .max_wait = 20e-9});
  EXPECT_EQ(report.requests.size(), 30u);
  EXPECT_EQ(report.tenant_total("alice").count, 20u);
  EXPECT_EQ(report.tenant_total("bob").count, 10u);
  EXPECT_EQ(report.tenant_total("nobody").count, 0u);
  EXPECT_GT(report.tenant_total("alice").p99, 0.0);
}

TEST(LatencyStatsSummary, EmptySampleYieldsZeros) {
  const LatencyStats stats = LatencyStats::from({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.p99, 0.0);

  const LatencyStats some = LatencyStats::from({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(some.count, 4u);
  EXPECT_DOUBLE_EQ(some.mean, 2.5);
  EXPECT_DOUBLE_EQ(some.p50, 2.0);
  EXPECT_DOUBLE_EQ(some.p99, 4.0);
  EXPECT_DOUBLE_EQ(some.max, 4.0);
}

}  // namespace
