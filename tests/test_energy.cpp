#include <gtest/gtest.h>

#include "circuit/energy.hpp"

namespace {

using ptc::circuit::EnergyLedger;

TEST(EnergyLedger, AccumulatesPerCategory) {
  EnergyLedger ledger;
  ledger.add_energy("laser", 1e-12);
  ledger.add_energy("laser", 2e-12);
  ledger.add_energy("driver", 0.5e-12);
  EXPECT_NEAR(ledger.energy("laser"), 3e-12, 1e-18);
  EXPECT_NEAR(ledger.energy("driver"), 0.5e-12, 1e-18);
  EXPECT_NEAR(ledger.total_energy(), 3.5e-12, 1e-18);
  EXPECT_DOUBLE_EQ(ledger.energy("unknown"), 0.0);
}

TEST(EnergyLedger, StaticPowerAccrual) {
  EnergyLedger ledger;
  ledger.add_static_power("adc", 18.6e-3);
  ledger.add_static_power("tia", 38e-3);
  EXPECT_NEAR(ledger.total_static_power(), 56.6e-3, 1e-9);
  ledger.accrue_static(125e-12);  // one 8 GS/s sample window
  EXPECT_NEAR(ledger.energy("adc"), 18.6e-3 * 125e-12, 1e-18);
  EXPECT_NEAR(ledger.energy("tia"), 38e-3 * 125e-12, 1e-18);
}

TEST(EnergyLedger, RepeatedStaticRegistrationAccumulates) {
  EnergyLedger ledger;
  for (int i = 0; i < 16; ++i) ledger.add_static_power("adc", 18.6e-3);
  EXPECT_NEAR(ledger.static_power("adc"), 16 * 18.6e-3, 1e-9);
}

TEST(EnergyLedger, EntriesIncludeStaticOnlyCategories) {
  EnergyLedger ledger;
  ledger.add_energy("write", 1e-12);
  ledger.add_static_power("hold", 1e-3);
  const auto entries = ledger.entries();
  ASSERT_EQ(entries.size(), 2u);
  bool saw_hold = false;
  for (const auto& e : entries) {
    if (e.category == "hold") {
      saw_hold = true;
      EXPECT_DOUBLE_EQ(e.energy, 0.0);
      EXPECT_DOUBLE_EQ(e.static_power, 1e-3);
    }
  }
  EXPECT_TRUE(saw_hold);
}

TEST(EnergyLedger, ResetAndValidation) {
  EnergyLedger ledger;
  ledger.add_energy("x", 1.0);
  ledger.reset();
  EXPECT_DOUBLE_EQ(ledger.total_energy(), 0.0);
  EXPECT_THROW(ledger.add_energy("x", -1.0), std::invalid_argument);
  EXPECT_THROW(ledger.add_static_power("x", -1.0), std::invalid_argument);
  EXPECT_THROW(ledger.accrue_static(-1.0), std::invalid_argument);
}

}  // namespace
