// nn/tiling edge cases the graph compiler leans on: shapes that are not
// multiples of the 16x16 tile, k = 1 inner dimensions (1x1 convolutions),
// batch = 1 requests, and single-tile graphs.  Each case checks the plan
// geometry, the float agreement of the photonic path, and the runtime
// contract that an N-core fleet reproduces one photonic core bit for bit.
#include <gtest/gtest.h>

#include <cstddef>

#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "core/tensor_core.hpp"
#include "graph/compile.hpp"
#include "graph/executor.hpp"
#include "graph/ir.hpp"
#include "nn/backend.hpp"
#include "nn/tiling.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/backend.hpp"

namespace {

using namespace ptc;
using namespace ptc::nn;

/// Photonic (analog readout, differential weights) vs float reference, plus
/// the fleet-vs-single-core bit-identity, for an s x k times k x m matmul.
void check_shape(std::size_t s, std::size_t k, std::size_t m,
                 std::uint64_t seed) {
  Rng rng(seed);
  const Matrix x = random_activations(s, k, rng);
  const Matrix w = random_signed(k, m, rng);

  FloatBackend reference;
  const Matrix expected = reference.matmul(x, w);

  PhotonicBackendOptions options;
  options.quantize_output = false;
  options.differential_weights = true;

  core::TensorCore core;
  PhotonicBackend photonic(core, options);
  const Matrix single = photonic.matmul(x, w);

  // 3-bit pSRAM weights bound the analog error; the shapes must still agree
  // to within the quantization budget (max |w| * half an LSB per term).
  const double tolerance =
      static_cast<double>(k) * 1.0 / (2.0 * 7.0) + 1e-9;
  EXPECT_LT(single.max_abs_diff(expected), tolerance)
      << "shape " << s << "x" << k << " * " << k << "x" << m;

  runtime::Accelerator accelerator({.cores = 3});
  const Matrix fleet = accelerator.matmul(x, w, options);
  EXPECT_EQ(fleet.max_abs_diff(single), 0.0)
      << "fleet diverged at " << s << "x" << k << " * " << k << "x" << m;
}

TEST(TilingEdgeCases, NonMultipleOf16Shapes) {
  Rng x_rng(1);
  Matrix x = random_activations(5, 17, x_rng);
  Rng w_rng(2);
  const Matrix w = random_signed(17, 23, w_rng);
  const TilePlan plan = plan_tiled_matmul(x, w, 16, 16, false);
  EXPECT_EQ(plan.k_tiles(), 2u);
  EXPECT_EQ(plan.m_tiles(), 2u);
  EXPECT_EQ(plan.passes.size(), 4u);

  Rng x2_rng(3);
  Matrix x2 = random_activations(5, 17, x2_rng);
  const TilePlan differential = plan_tiled_matmul(x2, w, 16, 16, true);
  EXPECT_EQ(differential.passes.size(), 8u);

  check_shape(5, 17, 23, 100);
  check_shape(3, 31, 7, 101);
}

TEST(TilingEdgeCases, InnerDimensionOfOne) {
  // k = 1: one input column drives every output — the 1x1-conv shape.
  Rng x_rng(4);
  Matrix x = random_activations(4, 1, x_rng);
  Rng w_rng(5);
  const Matrix w = random_signed(1, 20, w_rng);
  const TilePlan plan = plan_tiled_matmul(x, w, 16, 16, false);
  EXPECT_EQ(plan.k_tiles(), 1u);
  EXPECT_EQ(plan.m_tiles(), 2u);

  check_shape(4, 1, 20, 102);
  check_shape(1, 1, 1, 103);
}

TEST(TilingEdgeCases, BatchOfOne) {
  // One request row: the latency-critical serving shape.
  Rng x_rng(6);
  Matrix x = random_activations(1, 40, x_rng);
  Rng w_rng(7);
  const Matrix w = random_signed(40, 12, w_rng);
  const TilePlan plan = plan_tiled_matmul(x, w, 16, 16, false);
  EXPECT_EQ(plan.samples, 1u);
  EXPECT_EQ(plan.passes.size(), 3u);  // ceil(40/16) x ceil(12/16)

  check_shape(1, 40, 12, 104);
}

TEST(TilingEdgeCases, SingleTileFitsWithoutPaddingArtifacts) {
  // Shapes inside one 16x16 tile: exactly one pass, and the zero-padded
  // tail columns must contribute nothing.
  Rng x_rng(8);
  Matrix x = random_activations(4, 8, x_rng);
  Rng w_rng(9);
  const Matrix w = random_signed(8, 8, w_rng);
  const TilePlan plan = plan_tiled_matmul(x, w, 16, 16, false);
  EXPECT_EQ(plan.passes.size(), 1u);

  check_shape(4, 8, 8, 105);
  check_shape(2, 16, 16, 106);  // exact tile boundary
}

TEST(TilingEdgeCases, SingleTileGraphRunsOnTheFleetBitIdentically) {
  // A whole graph whose every matmul is one tile — the smallest compiled
  // schedule the serving layer can mark fully resident.
  Rng rng(10);
  graph::Graph g;
  const auto x = g.input(graph::Shape{{8}});
  auto v = g.matmul(x, random_signed(8, 8, rng));
  v = g.bias(v, std::vector<double>(8, 0.1));
  g.relu(v);
  const graph::CompiledGraph compiled = graph::compile(g);
  EXPECT_EQ(compiled.pass_profile(16, 16, false).total_passes, 1u);

  Rng data_rng(11);
  const Matrix input = random_activations(6, 8, data_rng);

  PhotonicBackendOptions options;
  options.differential_weights = true;
  core::TensorCore core;
  PhotonicBackend photonic(core, options);
  const Matrix single = graph::run(compiled, photonic, input);

  runtime::Accelerator accelerator({.cores = 5});
  runtime::AcceleratorBackend fleet(accelerator, options);
  const Matrix multi = graph::run(compiled, fleet, input);
  EXPECT_EQ(multi.max_abs_diff(single), 0.0);
}

}  // namespace
