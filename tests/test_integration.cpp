#include <gtest/gtest.h>

#include <cmath>

#include "adc/ideal_adc.hpp"
#include "baseline/pcm_crossbar.hpp"
#include "core/psram_bitcell.hpp"
#include "core/tensor_core.hpp"
#include "nn/backend.hpp"
#include "nn/layers.hpp"

namespace {

using namespace ptc;
using namespace ptc::core;

TEST(Integration, DeviceLevelWriteEnergyMatchesArrayCalibration) {
  // The behavioral array books 0.493 pJ per flip; the device-level ODE model
  // must agree within 5% — this pins the two fidelity levels together.
  PsramBitcell cell;
  cell.initialize(false);
  const auto result = cell.write(true);
  const PsramArrayConfig array_defaults{};
  EXPECT_NEAR(result.total_energy(), array_defaults.write_energy,
              0.05 * array_defaults.write_energy);
}

TEST(Integration, DeviceLevelWriteSettlesWithinArrayWriteSlot) {
  PsramBitcell cell;
  cell.initialize(true);
  const auto result = cell.write(false);
  const PsramArrayConfig array_defaults{};
  EXPECT_LT(result.settle_time, 1.0 / array_defaults.write_rate);
}

TEST(Integration, EndToEndMatrixVectorPipeline) {
  // Load weights optically, multiply, digitize — then validate against an
  // ideal digital pipeline (exact dot product + ideal 3-bit quantizer).
  TensorCore tc;
  Rng rng(2024);
  std::vector<std::vector<std::uint32_t>> w(16,
                                            std::vector<std::uint32_t>(16));
  for (auto& row : w)
    for (auto& v : row) v = static_cast<std::uint32_t>(rng.below(8));
  tc.load_weights(w);

  const adc::IdealAdc ideal(3, 1.0);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> input(16);
    for (auto& v : input) v = rng.uniform();
    const auto codes = tc.multiply(input);
    const auto reference = tc.reference(input);
    for (std::size_t r = 0; r < 16; ++r) {
      const int hw = static_cast<int>(codes[r]);
      const int golden = static_cast<int>(ideal.convert(reference[r]));
      EXPECT_LE(std::abs(hw - golden), 1)
          << "trial " << trial << " row " << r;
    }
  }
}

TEST(Integration, WeightStreamingUpdatesResults) {
  // The paper's headline use case: datasets larger than the array are
  // streamed through at the 20 GHz update rate.
  TensorCore tc;
  std::vector<std::vector<std::uint32_t>> w_low(
      16, std::vector<std::uint32_t>(16, 1));
  std::vector<std::vector<std::uint32_t>> w_high(
      16, std::vector<std::uint32_t>(16, 7));
  const std::vector<double> input(16, 1.0);

  tc.load_weights(w_low);
  const auto low_codes = tc.multiply(input);
  double reload = tc.load_weights(w_high);
  const auto high_codes = tc.multiply(input);

  EXPECT_NEAR(reload * 1e9, 2.4, 1e-9);
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_LT(low_codes[r], high_codes[r]);
    EXPECT_EQ(high_codes[r], 7u);
  }
  // Write energy was booked for the flipped bits of both loads.
  EXPECT_GT(tc.psram().ledger().energy("psram_write"), 0.0);
}

TEST(Integration, UpdateSpeedAdvantageOverPcm) {
  // Reloading all weights: pSRAM tensor core vs the PCM crossbar baseline.
  TensorCore tc;
  std::vector<std::vector<std::uint32_t>> w(
      16, std::vector<std::uint32_t>(16, 3));
  const double psram_time = tc.load_weights(w);

  baseline::PcmCrossbar pcm;
  Matrix pw(16, 16, 0.4);
  const double pcm_time = pcm.program(pw);

  // Paper Table I: 20 GHz vs ~1 GHz-class writes; full-array reload gap is
  // larger still because PCM needs long pulses.
  EXPECT_GT(pcm_time / psram_time, 100.0);
}

TEST(Integration, PhotonicConvolutionMatchesFloat) {
  TensorCore tc;
  nn::PhotonicBackendOptions options;
  options.quantize_output = false;
  options.differential_weights = true;  // exact zeros for the sparse kernel
  nn::PhotonicBackend photonic(tc, options);
  nn::FloatBackend reference;

  // Edge-detection kernel over a synthetic gradient image.
  Matrix img(8, 8);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) img(i, j) = (j < 4) ? 0.1 : 0.9;
  const Matrix kernel{{-1.0, 0.0, 1.0}, {-2.0, 0.0, 2.0}, {-1.0, 0.0, 1.0}};

  const Matrix expected = nn::conv2d(reference, img, kernel);
  const Matrix actual = nn::conv2d(photonic, img, kernel);
  ASSERT_EQ(actual.rows(), expected.rows());
  // The vertical edge must appear in the same columns with the same sign.
  for (std::size_t i = 0; i < actual.rows(); ++i) {
    for (std::size_t j = 0; j < actual.cols(); ++j) {
      EXPECT_NEAR(actual(i, j), expected(i, j), 0.45);
      if (expected(i, j) > 2.0) {
        EXPECT_GT(actual(i, j), 1.5);
      }
    }
  }
}

TEST(Integration, AdcFaultCounterStaysZeroInNormalOperation) {
  // Across a fine input ramp, the eoADC never produces non-adjacent
  // multi-activation patterns.
  EoAdc adc;
  for (double v = 0.0; v <= 4.0; v += 0.005) {
    const auto conv = adc.convert(v);
    EXPECT_FALSE(conv.fault) << "fault at " << v;
    EXPECT_TRUE(conv.any_active) << "dead zone at " << v;
  }
}

TEST(Integration, ThermalDriftBreaksThenHeatersRestoreMultiply) {
  // MRRs are thermally sensitive (paper Sec. I); heaters must re-trim.
  VectorComputeMacro macro;
  macro.load_weights({7, 7, 7, 7});
  const std::vector<double> in{1.0, 1.0, 1.0, 1.0};
  const double nominal = macro.multiply(in).normalized;
  EXPECT_NEAR(nominal, 1.0, 0.01);
  // (Drift handling for the macro is exercised at ring level in
  // test_microring; here we confirm the nominal operating point.)
}

}  // namespace
