#include <gtest/gtest.h>

#include "core/tech.hpp"
#include "optics/microring.hpp"

namespace {

using namespace ptc::optics;
using ptc::core::adc_ring_config;
using ptc::core::compute_ring_config;
using ptc::core::channel_wavelength;

// ---------------------------------------------------------------------------
// Compute/pSRAM ring (7.5 um, add-drop, 200 nm gaps) — paper Sec. IV-B.
// ---------------------------------------------------------------------------

TEST(ComputeRing, FsrMatchesPaper) {
  const Microring ring(compute_ring_config(0, 0.0));
  // Paper: 9.36 nm FSR.
  EXPECT_NEAR(ring.fsr(1310e-9) * 1e9, 9.36, 0.01);
}

TEST(ComputeRing, ResonancePinnedAtDesignWavelength) {
  const Microring ring(compute_ring_config(0, 0.0));
  EXPECT_NEAR(ring.resonance_near(1310e-9), 1310e-9, 1e-15);
}

class RingChannelSpacing : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingChannelSpacing, DlStepsGiveChannelGrid) {
  // Paper Fig. 6: dL in {0, 68, 136, 204} nm -> resonances 2.33 nm apart.
  const std::size_t channel = GetParam();
  const Microring ring(compute_ring_config(channel, 0.0));
  const double expected = channel_wavelength(channel);
  EXPECT_NEAR(ring.resonance_near(expected) * 1e9, expected * 1e9, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Channels, RingChannelSpacing,
                         ::testing::Values(0, 1, 2, 3));

TEST(ComputeRing, OnStateExtinctionBelowMinus25dB) {
  Microring ring(compute_ring_config(0, 0.0));
  ring.set_bias(0.0);  // pinned on resonance at 0 V
  EXPECT_LT(ring.thru_transmission(1310e-9), 3e-3);  // < -25 dB
  EXPECT_GT(ring.drop_transmission(1310e-9), 0.9);   // light exits the drop
}

TEST(ComputeRing, OffStatePassesThru) {
  Microring ring(compute_ring_config(0, 0.0));
  ring.set_bias(1.8);  // VDD shifts the ring off resonance
  EXPECT_GT(ring.thru_transmission(1310e-9), 0.95);
  EXPECT_LT(ring.drop_transmission(1310e-9), 0.05);
}

TEST(ComputeRing, VddShiftIsSeveralLinewidths) {
  Microring ring(compute_ring_config(0, 0.0));
  const double fwhm = ring.fwhm(1310e-9);
  const double res0 = ring.resonance_near(1310e-9);
  ring.set_bias(1.8);
  const double res1 = ring.resonance_near(1310e-9);
  EXPECT_GT((res1 - res0) / fwhm, 2.0);
  EXPECT_NEAR((res1 - res0) * 1e12, 448.0, 5.0);  // ~448 pm at VDD
}

TEST(ComputeRing, PinBiasShiftsOperatingPoint) {
  // pSRAM latch rings resonate at VDD instead of 0 V.
  Microring latch_ring(compute_ring_config(0, 1.8));
  latch_ring.set_bias(1.8);
  EXPECT_LT(latch_ring.thru_transmission(1310e-9), 3e-3);
  latch_ring.set_bias(0.0);
  EXPECT_GT(latch_ring.thru_transmission(1310e-9), 0.95);
}

TEST(ComputeRing, PowerConservation) {
  Microring ring(compute_ring_config(0, 0.0));
  for (double detune_pm : {0.0, 50.0, 200.0, 1000.0}) {
    const double lambda = 1310e-9 + detune_pm * 1e-12;
    const double total = ring.thru_transmission(lambda) +
                         ring.drop_transmission(lambda) +
                         ring.absorbed_fraction(lambda);
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GE(ring.absorbed_fraction(lambda), 0.0);
  }
}

TEST(ComputeRing, AdjacentChannelCrosstalkIsSmall) {
  // A ring resonant at channel 0 barely touches channel 1 (2.33 nm away).
  Microring ring(compute_ring_config(0, 0.0));
  ring.set_bias(0.0);
  EXPECT_GT(ring.thru_transmission(channel_wavelength(1)), 0.995);
  EXPECT_GT(ring.thru_transmission(channel_wavelength(3)), 0.995);
}

TEST(ComputeRing, PeriodicResonances) {
  const Microring ring(compute_ring_config(0, 0.0));
  const double fsr = ring.fsr(1310e-9);
  // The next resonance order sits one FSR away.
  const double next = ring.resonance_near(1310e-9 + fsr);
  EXPECT_NEAR(next - 1310e-9, fsr, 0.02 * fsr);
}

TEST(ComputeRing, ThermalShiftRedshifts) {
  Microring ring(compute_ring_config(0, 0.0));
  const double res0 = ring.resonance_near(1310e-9);
  ring.set_temperature_offset(5.0);  // +5 K
  const double res1 = ring.resonance_near(1310e-9);
  EXPECT_NEAR((res1 - res0) * 1e12, 350.0, 1.0);  // 5 K x 70 pm/K
}

TEST(ComputeRing, HeaterAndFabricationShifts) {
  Microring ring(compute_ring_config(0, 0.0));
  ring.set_heater_shift(100e-12);
  EXPECT_NEAR((ring.resonance_near(1310e-9) - 1310e-9) * 1e12, 100.0, 0.5);
  ring.set_heater_shift(0.0);
  ring.set_resonance_error(-60e-12);
  EXPECT_NEAR((ring.resonance_near(1310e-9) - 1310e-9) * 1e12, -60.0, 0.5);
  EXPECT_THROW(ring.set_heater_shift(-1e-12), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// eoADC ring (10 um, all-pass, 250 nm gap, near-critical) — paper Sec. IV-C.
// ---------------------------------------------------------------------------

TEST(AdcRing, HighQAllPass) {
  const Microring ring(adc_ring_config());
  EXPECT_FALSE(ring.config().add_drop);
  EXPECT_DOUBLE_EQ(ring.drop_transmission(1310.5e-9), 0.0);
  EXPECT_GT(ring.q_factor(1310.5e-9), 40e3);  // high-Q as the paper requires
  EXPECT_LT(ring.q_factor(1310.5e-9), 80e3);
}

TEST(AdcRing, NearCriticalCouplingExtinction) {
  Microring ring(adc_ring_config());
  ring.set_bias(0.0);
  EXPECT_LT(ring.thru_transmission(1310.5e-9), 1e-3);  // deep notch
}

TEST(AdcRing, ThresholdCrossingAtQuarterVolt) {
  // DESIGN.md calibration: at |V_pn| = LSB/2 = 0.25 V the thru power on
  // 200 uW input equals the 18 uW reference.
  Microring ring(adc_ring_config());
  ring.set_bias(0.25);
  EXPECT_NEAR(200e-6 * ring.thru_transmission(1310.5e-9), 18e-6, 0.5e-6);
  ring.set_bias(-0.25);
  EXPECT_NEAR(200e-6 * ring.thru_transmission(1310.5e-9), 18e-6, 0.5e-6);
}

TEST(AdcRing, AdjacentReferenceStaysInactive) {
  // At |V_pn| = LSB = 0.5 V (the neighbouring channel's distance when the
  // input sits on a reference) the thru power is far above threshold.
  Microring ring(adc_ring_config());
  ring.set_bias(0.5);
  EXPECT_GT(200e-6 * ring.thru_transmission(1310.5e-9), 2.5 * 18e-6);
}

TEST(AdcRing, NotchDepthMonotoneInDetuning) {
  Microring ring(adc_ring_config());
  double prev = -1.0;
  for (double v = 0.0; v <= 1.0; v += 0.05) {
    ring.set_bias(v);
    const double t = ring.thru_transmission(1310.5e-9);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(AdcRing, FwhmMatchesDesign) {
  const Microring ring(adc_ring_config());
  EXPECT_NEAR(ring.fwhm(1310.5e-9) * 1e12, 26.4, 1.5);  // ~26 pm
}

TEST(Microring, RejectsBadConfig) {
  MicroringConfig bad = compute_ring_config(0, 0.0);
  bad.radius = 0.0;
  EXPECT_THROW(Microring{bad}, std::invalid_argument);
  bad = compute_ring_config(0, 0.0);
  bad.n_eff = 0.5;
  EXPECT_THROW(Microring{bad}, std::invalid_argument);
  const Microring good(compute_ring_config(0, 0.0));
  EXPECT_THROW(good.thru_transmission(0.0), std::invalid_argument);
}

}  // namespace
