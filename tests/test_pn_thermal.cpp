#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.hpp"
#include "optics/pn_phase_shifter.hpp"
#include "optics/thermal.hpp"

namespace {

using namespace ptc;
using namespace ptc::optics;

TEST(PnPhaseShifter, OddSymmetricShift) {
  const PnPhaseShifter pn;
  for (double v : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(pn.resonance_shift(v), -pn.resonance_shift(-v), 1e-20);
  }
  EXPECT_DOUBLE_EQ(pn.resonance_shift(0.0), 0.0);
}

TEST(PnPhaseShifter, SmallSignalSlopeEqualsEfficiency) {
  PnJunctionConfig config;
  config.efficiency = 17.65e-12;
  const PnPhaseShifter pn(config);
  const double dv = 1e-6;
  const double slope = pn.resonance_shift(dv) / dv;
  EXPECT_NEAR(slope, config.efficiency, 1e-3 * config.efficiency);
}

TEST(PnPhaseShifter, CompressiveAtLargeBias) {
  const PnPhaseShifter pn;
  const double eff = pn.config().efficiency;
  // At 4 V the sqrt law must give less than the linear extrapolation.
  EXPECT_LT(pn.resonance_shift(4.0), eff * 4.0);
  EXPECT_GT(pn.resonance_shift(4.0), eff * 4.0 * 0.5);
  // Monotone increasing.
  double prev = 0.0;
  for (double v = 0.1; v <= 4.0; v += 0.1) {
    const double s = pn.resonance_shift(v);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(PnPhaseShifter, DepletionCapacitanceShrinksWithReverseBias) {
  const PnPhaseShifter pn;
  const double c0 = pn.capacitance(0.0);
  EXPECT_NEAR(c0, pn.config().junction_capacitance, 1e-18);
  EXPECT_LT(pn.capacitance(2.0), c0);
  EXPECT_GT(pn.capacitance(-0.3), c0);  // forward: larger
  // Clamped near -Vbi instead of diverging.
  EXPECT_TRUE(std::isfinite(pn.capacitance(-0.9)));
}

TEST(PnPhaseShifter, SwitchingEnergyQuadraticInSwing) {
  const PnPhaseShifter pn;
  const double e1 = pn.switching_energy(0.0, 0.9);
  const double e2 = pn.switching_energy(0.0, 1.8);
  EXPECT_GT(e2, 2.0 * e1);  // superlinear (quadratic-ish)
  EXPECT_NEAR(pn.switching_energy(1.8, 1.8), 0.0, 1e-24);
}

TEST(ThermalTuner, ShiftAndPowerInverse) {
  ThermalTuner tuner;
  tuner.set_heater_power(1e-3);
  EXPECT_NEAR(tuner.temperature_rise(), 4.0, 1e-9);      // 1 mW / 0.25 mW/K
  EXPECT_NEAR(tuner.resonance_shift(), 280e-12, 1e-15);  // 4 K x 70 pm/K
  const double p = tuner.power_for_shift(280e-12);
  EXPECT_NEAR(p, 1e-3, 1e-9);
}

TEST(ThermalTuner, ClampsAtMaxPower) {
  ThermalTuner tuner;
  tuner.set_heater_power(1.0);  // way above the 10 mW limit
  EXPECT_NEAR(tuner.heater_power(), 10e-3, 1e-12);
  EXPECT_THROW(tuner.set_heater_power(-1e-3), std::invalid_argument);
  EXPECT_THROW(tuner.power_for_shift(-1e-12), std::invalid_argument);
}

TEST(ThermalDrift, MeanRevertingStatistics) {
  ThermalDrift drift(300.0, 1e-3, 0.5);
  Rng rng(31);
  std::vector<double> temps;
  // Burn in, then sample the stationary distribution.
  for (int i = 0; i < 2000; ++i) drift.step(1e-4, rng);
  for (int i = 0; i < 20000; ++i) temps.push_back(drift.step(1e-4, rng));
  EXPECT_NEAR(mean(temps), 300.0, 0.05);
  EXPECT_NEAR(stddev(temps), 0.5, 0.1);
}

TEST(ThermalDrift, ZeroSigmaStaysAtMean) {
  ThermalDrift drift(300.0, 1e-3, 0.0);
  Rng rng(1);
  drift.reset(301.0);
  for (int i = 0; i < 100; ++i) drift.step(1e-3, rng);
  EXPECT_NEAR(drift.temperature(), 300.0, 0.05);  // relaxed back to mean
}

}  // namespace
