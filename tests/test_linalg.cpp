#include <gtest/gtest.h>

#include "common/linalg.hpp"
#include "common/rng.hpp"

namespace {

using namespace ptc;

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_THROW(m(2, 0), std::invalid_argument);
  EXPECT_THROW(Matrix({{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityTransposeNorm) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_NEAR(i3.norm(), std::sqrt(3.0), 1e-12);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), 0.0);
  const Matrix scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 3.0);
}

TEST(Matrix, MatmulAgainstHandComputed) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  EXPECT_THROW(matmul(a, Matrix(3, 2)), std::invalid_argument);
}

TEST(Matrix, MatvecMatchesMatmul) {
  Matrix a{{1.0, -2.0, 0.5}, {0.0, 3.0, 1.0}};
  const std::vector<double> x{2.0, 1.0, 4.0};
  const auto y = matvec(a, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

class SvdSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SvdSizes, ReconstructsRandomMatrix) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  Matrix a(n, n);
  for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);

  const Svd d = svd(a);
  // Reconstruct A = U diag(S) V^T.
  Matrix us = d.u;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) us(i, j) *= d.s[j];
  const Matrix back = matmul(us, d.v.transposed());
  EXPECT_LT(back.max_abs_diff(a), 1e-9);

  // Singular values descending and non-negative.
  for (std::size_t j = 0; j + 1 < n; ++j) {
    EXPECT_GE(d.s[j], d.s[j + 1]);
    EXPECT_GE(d.s[j + 1], 0.0);
  }

  // U and V have orthonormal columns.
  const Matrix utu = matmul(d.u.transposed(), d.u);
  const Matrix vtv = matmul(d.v.transposed(), d.v);
  EXPECT_LT(utu.max_abs_diff(Matrix::identity(n)), 1e-9);
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(n)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SvdSizes,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16));

TEST(Svd, HandlesRectangularTall) {
  Rng rng(55);
  Matrix a(6, 3);
  for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);
  const Svd d = svd(a);
  Matrix us = d.u;
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 3; ++j) us(i, j) *= d.s[j];
  EXPECT_LT(matmul(us, d.v.transposed()).max_abs_diff(a), 1e-9);
}

TEST(Svd, DiagonalMatrixGivesDiagonalValues) {
  Matrix a{{3.0, 0.0}, {0.0, 1.5}};
  const Svd d = svd(a);
  EXPECT_NEAR(d.s[0], 3.0, 1e-12);
  EXPECT_NEAR(d.s[1], 1.5, 1e-12);
}

TEST(CMatrix, IdentityAndDagger) {
  CMatrix u(2, 2);
  u(0, 0) = {0.0, 1.0};
  u(0, 1) = {1.0, 0.0};
  u(1, 0) = {2.0, -1.0};
  u(1, 1) = {0.0, 0.0};
  const CMatrix d = u.dagger();
  EXPECT_EQ(d(0, 0), std::complex<double>(0.0, -1.0));
  EXPECT_EQ(d(0, 1), std::complex<double>(2.0, 1.0));
  EXPECT_LT(CMatrix::identity(3).max_abs_diff(CMatrix::identity(3)), 1e-15);
}

TEST(CMatrix, UnitarityCheck) {
  // Hadamard-like unitary.
  const double s = 1.0 / std::sqrt(2.0);
  CMatrix h(2, 2);
  h(0, 0) = s;
  h(0, 1) = s;
  h(1, 0) = s;
  h(1, 1) = -s;
  EXPECT_TRUE(is_unitary(h));
  h(1, 1) = -0.9 * s;
  EXPECT_FALSE(is_unitary(h));
  EXPECT_FALSE(is_unitary(CMatrix(2, 3)));
}

TEST(CMatrix, ComplexMatvec) {
  // y = A x with A = [[1, i], [-i, 1]], x = [1, i]:
  //   y0 = 1*1 + i*i = 0,  y1 = -i*1 + 1*i = 0.
  CMatrix a(2, 2);
  a(0, 0) = {1.0, 0.0};
  a(0, 1) = {0.0, 1.0};
  a(1, 0) = {0.0, -1.0};
  a(1, 1) = {1.0, 0.0};
  const std::vector<std::complex<double>> x{{1.0, 0.0}, {0.0, 1.0}};
  const auto y = matvec(a, x);
  EXPECT_NEAR(std::abs(y[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[1]), 0.0, 1e-12);

  // And with x = [1, 0]: y = first column.
  const auto y2 = matvec(a, {{1.0, 0.0}, {0.0, 0.0}});
  EXPECT_NEAR(y2[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(y2[1].imag(), -1.0, 1e-12);
}

}  // namespace
