// Variation/drift subsystem: seeded determinism of core::VariationModel,
// fast-path-vs-physics bit-identity per frozen calibration epoch, accuracy
// recovery after recalibrate(), and the serve loop's drift/recalibration
// accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/tensor_core.hpp"
#include "core/variation.hpp"
#include "core/vector_macro.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "sim/montecarlo.hpp"

namespace {

using namespace ptc;
using namespace ptc::core;

VariationConfig test_variation(std::uint64_t seed) {
  VariationConfig v;
  v.seed = seed;
  v.resonance_sigma = 4e-12;
  v.q_spread = 0.03;
  v.coupling_spread = 0.02;
  v.psram_level_sigma = 10e-3;
  v.thermal_sensitivity_spread = 0.1;
  return v;
}

TensorCoreConfig small_core(std::uint64_t variation_seed, bool fast_path) {
  TensorCoreConfig config;
  config.rows = 4;
  config.cols = 4;
  config.fast_path = fast_path;
  config.variation = test_variation(variation_seed);
  return config;
}

std::vector<std::vector<std::uint32_t>> test_weights() {
  return {{0, 7, 3, 5}, {1, 2, 6, 4}, {7, 7, 0, 1}, {2, 5, 5, 3}};
}

const std::vector<double> kProbeInput{0.9, 0.2, 0.65, 0.4};

// ---------------------------------------------------------------------------
// VariationModel
// ---------------------------------------------------------------------------

TEST(VariationModel, SamplingIsDeterministicPerSeed) {
  const VariationModel model(test_variation(11));
  Rng a(11), b(11);
  for (int i = 0; i < 16; ++i) {
    const auto da = model.sample_ring(a);
    const auto db = model.sample_ring(b);
    EXPECT_EQ(da.resonance_error, db.resonance_error);
    EXPECT_EQ(da.loss_scale, db.loss_scale);
    EXPECT_EQ(da.coupling_scale, db.coupling_scale);
    EXPECT_EQ(da.bias_offset, db.bias_offset);
    EXPECT_EQ(da.thermal_scale, db.thermal_scale);
  }
}

TEST(VariationModel, ZeroSeedDisablesVariation) {
  EXPECT_FALSE(VariationModel(test_variation(0)).enabled());
  EXPECT_TRUE(VariationModel(test_variation(9)).enabled());
}

TEST(VariationModel, ChildSeedsAreDistinctAndNeverZero) {
  const VariationModel model(test_variation(5));
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint64_t s = model.child_seed(i);
    EXPECT_NE(s, 0u);
    seeds.insert(s);
  }
  EXPECT_EQ(seeds.size(), 64u);
}

TEST(VariationModel, RejectsNegativeSigmas) {
  VariationConfig bad = test_variation(1);
  bad.q_spread = -0.1;
  EXPECT_THROW(VariationModel{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Seeded device determinism
// ---------------------------------------------------------------------------

TEST(Variation, SameSeedBuildsTheSameDie) {
  TensorCore a(small_core(21, true));
  TensorCore b(small_core(21, true));
  a.load_weights(test_weights());
  b.load_weights(test_weights());
  const auto ya = a.multiply_analog(kProbeInput);
  const auto yb = b.multiply_analog(kProbeInput);
  EXPECT_EQ(ya, yb);
}

TEST(Variation, DistinctSeedsBuildDistinctDies) {
  TensorCore a(small_core(21, true));
  TensorCore b(small_core(22, true));
  a.load_weights(test_weights());
  b.load_weights(test_weights());
  EXPECT_NE(a.multiply_analog(kProbeInput), b.multiply_analog(kProbeInput));
}

TEST(Variation, VariedDieDeviatesFromThePristineDesign) {
  TensorCore pristine(small_core(0, true));
  TensorCore varied(small_core(21, true));
  pristine.load_weights(test_weights());
  varied.load_weights(test_weights());
  EXPECT_NE(pristine.multiply_analog(kProbeInput),
            varied.multiply_analog(kProbeInput));
}

// ---------------------------------------------------------------------------
// Fast-path-vs-physics bit identity per frozen calibration epoch
// ---------------------------------------------------------------------------

TEST(Variation, FastPathMatchesPhysicsBitForBitOnAVariedDie) {
  TensorCore fast(small_core(33, true));
  TensorCore physics(small_core(33, false));
  fast.load_weights(test_weights());
  physics.load_weights(test_weights());
  ASSERT_TRUE(fast.fast_path_active());
  ASSERT_FALSE(physics.fast_path_active());
  EXPECT_EQ(fast.multiply_analog(kProbeInput),
            physics.multiply_analog(kProbeInput));
}

TEST(Variation, FastPathTracksPhysicsAtEveryDetuning) {
  TensorCore fast(small_core(33, true));
  TensorCore physics(small_core(33, false));
  fast.load_weights(test_weights());
  physics.load_weights(test_weights());
  for (double detuning : {0.15, -0.4, 0.8}) {
    fast.set_thermal_detuning(detuning);
    physics.set_thermal_detuning(detuning);
    EXPECT_EQ(fast.multiply_analog(kProbeInput),
              physics.multiply_analog(kProbeInput));
  }
}

TEST(Variation, DetuningPerturbsAndRecalibrationRestoresBitForBit) {
  TensorCore core(small_core(33, true));
  core.load_weights(test_weights());
  const auto calibrated = core.multiply_analog(kProbeInput);
  EXPECT_EQ(core.calibration_epoch(), 0u);

  core.set_thermal_detuning(0.5);
  const auto drifted = core.multiply_analog(kProbeInput);
  EXPECT_NE(drifted, calibrated);

  core.recalibrate();
  EXPECT_EQ(core.calibration_epoch(), 1u);
  EXPECT_EQ(core.thermal_detuning(), 0.0);
  // Heater re-lock returns the die to the calibrated operating point: the
  // recovered outputs are bit-identical to the pre-drift epoch.
  EXPECT_EQ(core.multiply_analog(kProbeInput), calibrated);
}

TEST(Variation, ReloadUnderDetuningRefreshesTheCalibration) {
  TensorCore core(small_core(33, true));
  TensorCore oracle(small_core(33, false));
  core.load_weights(test_weights());
  core.set_thermal_detuning(0.3);
  // A weight reload while detuned must calibrate against the detuned
  // physics, not recall the detuning-0 memo entry.
  core.load_weights(test_weights());
  oracle.load_weights(test_weights());
  oracle.set_thermal_detuning(0.3);
  EXPECT_EQ(core.multiply_analog(kProbeInput),
            oracle.multiply_analog(kProbeInput));
}

// ---------------------------------------------------------------------------
// Accelerator drift / recalibration state
// ---------------------------------------------------------------------------

runtime::AcceleratorConfig drift_fleet(double sigma) {
  runtime::AcceleratorConfig config;
  config.cores = 2;
  config.core.rows = 8;
  config.core.cols = 8;
  config.variation = test_variation(42);
  config.drift.sigma = sigma;
  config.drift.tau = 1e-6;
  return config;
}

TEST(AcceleratorDrift, AdvanceToMovesEveryCoreDeterministically) {
  runtime::Accelerator a(drift_fleet(0.5));
  runtime::Accelerator b(drift_fleet(0.5));
  EXPECT_TRUE(a.drift_enabled());
  EXPECT_EQ(a.max_abs_detuning(), 0.0);

  a.advance_to(1e-6);
  b.advance_to(1e-6);
  EXPECT_GT(a.max_abs_detuning(), 0.0);
  for (std::size_t i = 0; i < a.core_count(); ++i) {
    EXPECT_EQ(a.core(i).thermal_detuning(), b.core(i).thermal_detuning());
  }
  // Cores drift through independent streams.
  EXPECT_NE(a.core(0).thermal_detuning(), a.core(1).thermal_detuning());

  // Monotonic clock: rewinding is a no-op.
  const double detuning = a.core(0).thermal_detuning();
  a.advance_to(0.5e-6);
  EXPECT_EQ(a.core(0).thermal_detuning(), detuning);
  EXPECT_EQ(a.clock(), 1e-6);
}

TEST(AcceleratorDrift, DisabledDriftIsANoOp) {
  runtime::Accelerator accelerator(drift_fleet(0.0));
  EXPECT_FALSE(accelerator.drift_enabled());
  accelerator.advance_to(1.0);
  EXPECT_EQ(accelerator.max_abs_detuning(), 0.0);
  EXPECT_EQ(accelerator.clock(), 0.0);
}

TEST(AcceleratorDrift, RecalibrateRelocksAndBillsDowntime) {
  runtime::Accelerator accelerator(drift_fleet(0.5));
  accelerator.advance_to(2e-6);
  ASSERT_GT(accelerator.max_abs_detuning(), 0.0);

  const runtime::BatchCost downtime = accelerator.recalibrate();
  EXPECT_EQ(accelerator.max_abs_detuning(), 0.0);
  EXPECT_EQ(accelerator.recalibrations(), 1u);
  for (std::size_t i = 0; i < accelerator.core_count(); ++i) {
    EXPECT_EQ(accelerator.core(i).calibration_epoch(), 1u);
  }
  // One probe residency per core, costed like a cold serving batch.
  const runtime::BatchCost expected = accelerator.batch_cost(
      accelerator.core_count(), 0,
      accelerator.config().drift.recalibration_samples);
  EXPECT_EQ(downtime.latency, expected.latency);
  EXPECT_GT(downtime.latency, 0.0);
}

TEST(AcceleratorDrift, ResetDriftRewindsTheTrajectory) {
  runtime::Accelerator accelerator(drift_fleet(0.5));
  accelerator.advance_to(1e-6);
  const double first = accelerator.core(0).thermal_detuning();
  accelerator.reset_drift();
  EXPECT_EQ(accelerator.max_abs_detuning(), 0.0);
  EXPECT_EQ(accelerator.clock(), 0.0);
  accelerator.advance_to(1e-6);
  EXPECT_EQ(accelerator.core(0).thermal_detuning(), first);
}

// ---------------------------------------------------------------------------
// Serve-loop drift / recalibration accounting
// ---------------------------------------------------------------------------

TEST(ServeDrift, PolicyTriggersRecalibrationAndAccountsDowntime) {
  runtime::AcceleratorConfig config;
  config.cores = 2;
  config.variation = test_variation(42);
  config.drift.sigma = 0.5;
  config.drift.tau = 1e-6;
  runtime::Accelerator accelerator(config);
  serve::ModelRegistry registry(accelerator);
  Rng rng(3);
  registry.add("m", nn::Mlp(16, 8, 4, rng));
  serve::Server server(registry);

  const serve::LoadGenerator generator(
      {{.name = "t", .model = "m", .rate = 200e6, .requests = 48}}, 99);
  const std::vector<serve::Request> requests = generator.generate(registry);

  const serve::BatchPolicy no_recal{.max_batch = 4, .max_wait = 10e-9};
  const serve::BatchPolicy threshold{
      .max_batch = 4, .max_wait = 10e-9, .drift_threshold = 0.05};

  const serve::ServeReport baseline = server.run(requests, no_recal);
  EXPECT_EQ(baseline.recalibrations, 0u);
  EXPECT_EQ(baseline.recalibration_time, 0.0);
  EXPECT_GT(baseline.max_abs_detuning, 0.0);

  const serve::ServeReport recal = server.run(requests, threshold);
  EXPECT_GT(recal.recalibrations, 0u);
  EXPECT_GT(recal.recalibration_time, 0.0);
  // Downtime is real: the same trace takes longer under recalibration.
  EXPECT_GT(recal.makespan, baseline.makespan);
  // The re-locks bound the detuning the batches actually saw.
  EXPECT_LT(recal.max_abs_detuning, baseline.max_abs_detuning);

  // Accuracy accounting is consistent.
  EXPECT_TRUE(recal.accuracy_scored);
  EXPECT_LE(recal.reference_matches, recal.requests.size());
  EXPECT_GE(recal.accuracy(), 0.0);
  EXPECT_LE(recal.accuracy(), 1.0);
  std::size_t matches = 0;
  for (const serve::RequestRecord& r : recal.requests) {
    matches += r.matches_reference ? 1u : 0u;
  }
  EXPECT_EQ(matches, recal.reference_matches);

  // Batch records carry the drift telemetry.
  bool epoch_advanced = false;
  for (const serve::BatchRecord& b : recal.batches) {
    EXPECT_LE(b.detuning, recal.max_abs_detuning);
    if (b.epoch > 0) epoch_advanced = true;
  }
  EXPECT_TRUE(epoch_advanced);

  // Identical run, identical report: drift state resets per run.
  const serve::ServeReport again = server.run(requests, threshold);
  EXPECT_EQ(again.recalibrations, recal.recalibrations);
  EXPECT_EQ(again.reference_matches, recal.reference_matches);
  EXPECT_EQ(again.makespan, recal.makespan);
}

TEST(ServeDrift, DriftFreeFleetReportsNoDriftTelemetry) {
  // Varied (so the run scores accuracy) but drift-free fleet.
  runtime::AcceleratorConfig config;
  config.cores = 2;
  config.variation = test_variation(42);
  runtime::Accelerator accelerator(config);
  // Analog readout: without the 3-bit ADC in the loop the varied fleet
  // should still agree with the float reference predominantly.
  nn::PhotonicBackendOptions options;
  options.quantize_output = false;
  options.differential_weights = true;
  serve::ModelRegistry registry(accelerator, options);
  Rng rng(3);
  registry.add("m", nn::Mlp(16, 8, 4, rng));
  serve::Server server(registry);
  const serve::LoadGenerator generator(
      {{.name = "t", .model = "m", .rate = 200e6, .requests = 16}}, 99);
  const serve::ServeReport report = server.run(
      generator.generate(registry), {.max_batch = 4, .max_wait = 10e-9});
  EXPECT_EQ(report.recalibrations, 0u);
  EXPECT_EQ(report.max_abs_detuning, 0.0);
  EXPECT_TRUE(report.accuracy_scored);
  // 3-bit *weights* still quantize, so exact agreement is not guaranteed —
  // but a varied drift-free analog fleet matches the reference
  // predominantly.
  EXPECT_GT(report.accuracy(), 0.6);
}

// ---------------------------------------------------------------------------
// Monte-Carlo tie-in: fleet yield over fabrication seeds
// ---------------------------------------------------------------------------

TEST(VariationYield, MonteCarloOverSeedsIsReproducible) {
  const auto trial = [](Rng& rng) {
    TensorCoreConfig config = small_core(0, true);
    config.variation.seed = rng.next_u64() | 1;
    TensorCore core(config);
    core.load_weights(test_weights());
    const auto analog = core.multiply_analog(kProbeInput);
    const auto reference = core.reference(kProbeInput);
    double worst = 0.0;
    for (std::size_t r = 0; r < analog.size(); ++r) {
      worst = std::max(worst, std::abs(analog[r] - reference[r]));
    }
    return worst;
  };
  const auto pass = [](double worst) { return worst < 0.05; };

  const sim::MonteCarloSummary a = sim::run_monte_carlo(24, 777, trial, pass);
  const sim::MonteCarloSummary b = sim::run_monte_carlo(24, 777, trial, pass);
  EXPECT_EQ(a.trials, 24u);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.yield, b.yield);
  EXPECT_GT(a.mean, 0.0);
  EXPECT_GE(a.yield, 0.5);  // the default spreads are production-grade
}

}  // namespace
