// Transformer decoding: the incremental KV-cache decode path against the
// compiled full-sequence graph, over seeded random (seq_len, heads,
// d_model) draws.  The contracts the serving layer leans on:
//  (1) decode_step's logits are bitwise equal to the compiled graph's
//      final-position logits on the float backend (same helpers, same
//      accumulation order),
//  (2) the fleet executes the full-sequence graph bit-identically to a
//      single photonic core and within ADC tolerance of the float
//      reference,
//  (3) a request's token stream is independent of how decode steps
//      interleave with other requests — the property that makes
//      continuous batching's output bit-identical to sequential decoding.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "core/tensor_core.hpp"
#include "graph/compile.hpp"
#include "graph/executor.hpp"
#include "graph/ir.hpp"
#include "nn/backend.hpp"
#include "nn/transformer.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/backend.hpp"
#include "serve/model_registry.hpp"
#include "serve/token_server.hpp"

namespace {

using namespace ptc;
using nn::KvCache;
using nn::TransformerConfig;
using nn::TransformerModel;

Matrix ids_row(const std::vector<std::size_t>& tokens) {
  Matrix x(1, tokens.size());
  for (std::size_t p = 0; p < tokens.size(); ++p)
    x(0, p) = static_cast<double>(tokens[p]);
  return x;
}

std::vector<std::size_t> random_tokens(std::size_t count, std::size_t vocab,
                                       Rng& rng) {
  std::vector<std::size_t> tokens(count);
  for (auto& t : tokens) t = rng.below(vocab);
  return tokens;
}

// ---------------------------------------------------------------------------
// Graph construction
// ---------------------------------------------------------------------------

TEST(Transformer, GraphShapesAndStepKinds) {
  Rng rng(11);
  const TransformerConfig config{.vocab = 16,
                                 .d_model = 8,
                                 .heads = 2,
                                 .layers = 1,
                                 .d_ff = 12,
                                 .max_seq = 8};
  const TransformerModel model = TransformerModel::random(config, rng);
  const graph::Graph g = model.build_graph(5);
  EXPECT_EQ(g.node(g.output_id()).shape, (graph::Shape{{5, 16}}));

  const graph::CompiledGraph cg = graph::compile(g);
  std::size_t pairs = 0;
  for (const auto& step : cg.steps)
    if (step.kind == graph::Step::Kind::kMatmulPair) ++pairs;
  // Two activation x activation products per head: scores and context.
  EXPECT_EQ(pairs, 2u * config.heads);
}

TEST(Transformer, PassCountsMatchTheCompiledSchedule) {
  Rng rng(12);
  const TransformerConfig config{.vocab = 16,
                                 .d_model = 16,
                                 .heads = 2,
                                 .layers = 2,
                                 .d_ff = 24,
                                 .max_seq = 16};
  const TransformerModel model = TransformerModel::random(config, rng);
  const std::size_t seq = 9;
  const graph::CompiledGraph cg = graph::compile(model.build_graph(seq));
  const graph::PassProfile profile = cg.pass_profile(16, 16, true);

  std::size_t weight_tiles = 0;
  std::size_t attention_tiles = 0;
  for (const auto& sp : profile.steps) {
    const auto kind = cg.steps[sp.step].kind;
    if (kind == graph::Step::Kind::kMatmul) weight_tiles += sp.passes;
    if (kind == graph::Step::Kind::kMatmulPair) attention_tiles += sp.passes;
  }
  EXPECT_EQ(model.weight_passes(16, 16, true), weight_tiles);
  EXPECT_EQ(model.attention_passes(seq, 16, 16, true), attention_tiles);
}

// ---------------------------------------------------------------------------
// Contract 1: decode == compiled graph, bitwise, on the float backend
// ---------------------------------------------------------------------------

TEST(Transformer, DecodeMatchesCompiledGraphBitwiseOnFloatBackend) {
  Rng param_rng(21);
  for (std::size_t trial = 0; trial < 6; ++trial) {
    const std::size_t heads = 1 + param_rng.below(3);  // 1..3 heads
    const TransformerConfig config{
        .vocab = 8 + static_cast<std::size_t>(param_rng.below(17)),
        .d_model = heads * (4 + static_cast<std::size_t>(param_rng.below(3))),
        .heads = heads,
        .layers = 1 + static_cast<std::size_t>(param_rng.below(2)),
        .d_ff = 8 + static_cast<std::size_t>(param_rng.below(17)),
        .max_seq = 16};
    Rng weight_rng(100 + trial);
    const TransformerModel model = TransformerModel::random(config, weight_rng);
    const std::size_t seq = 1 + param_rng.below(6);
    const std::vector<std::size_t> tokens =
        random_tokens(seq, config.vocab, param_rng);

    nn::FloatBackend backend;
    const graph::CompiledGraph cg = graph::compile(model.build_graph(seq));
    const Matrix full = graph::run(cg, backend, ids_row(tokens));
    ASSERT_EQ(full.cols(), seq * config.vocab);

    KvCache cache = model.make_cache();
    std::vector<double> logits;
    for (const std::size_t token : tokens)
      logits = model.decode_step(backend, cache, token);
    EXPECT_EQ(cache.length, seq);
    EXPECT_EQ(cache.rows(), seq * config.layers);

    ASSERT_EQ(logits.size(), config.vocab);
    for (std::size_t j = 0; j < config.vocab; ++j) {
      EXPECT_EQ(logits[j], full(0, (seq - 1) * config.vocab + j))
          << "trial " << trial << " logit " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Contract 2: fleet == single core bitwise; fleet ~= float within tolerance
// ---------------------------------------------------------------------------

TEST(Transformer, FleetForwardIsBitIdenticalToASinglePhotonicCore) {
  Rng rng(31);
  const TransformerConfig config{.vocab = 16,
                                 .d_model = 16,
                                 .heads = 2,
                                 .layers = 2,
                                 .d_ff = 24,
                                 .max_seq = 8};
  const TransformerModel model = TransformerModel::random(config, rng);
  const std::vector<std::size_t> tokens = random_tokens(6, config.vocab, rng);
  const graph::CompiledGraph cg = graph::compile(model.build_graph(6));

  nn::PhotonicBackendOptions options;
  options.differential_weights = true;

  core::TensorCore core;
  nn::PhotonicBackend single(core, options);
  const Matrix y_single = graph::run(cg, single, ids_row(tokens));

  runtime::Accelerator accelerator({.cores = 8});
  runtime::AcceleratorBackend fleet(accelerator, options);
  const Matrix y_fleet = graph::run(cg, fleet, ids_row(tokens));

  EXPECT_EQ(y_fleet.max_abs_diff(y_single), 0.0);
}

TEST(Transformer, AnalogFleetTracksTheFloatReferenceWithinAdcTolerance) {
  Rng rng(32);
  const TransformerConfig config{.vocab = 16,
                                 .d_model = 16,
                                 .heads = 2,
                                 .layers = 1,
                                 .d_ff = 16,
                                 .max_seq = 8};
  const TransformerModel model = TransformerModel::random(config, rng);
  const std::vector<std::size_t> tokens = random_tokens(5, config.vocab, rng);
  const graph::CompiledGraph cg = graph::compile(model.build_graph(5));

  nn::FloatBackend reference;
  const Matrix y_ref = graph::run(cg, reference, ids_row(tokens));

  nn::PhotonicBackendOptions options;
  options.quantize_output = false;  // isolate 3-bit weight quantization
  options.differential_weights = true;
  runtime::Accelerator accelerator({.cores = 4});
  runtime::AcceleratorBackend fleet(accelerator, options);
  const Matrix y_pho = graph::run(cg, fleet, ids_row(tokens));

  // Layernorms re-center each position, so quantization noise stays
  // bounded: same network, analog tolerance.
  EXPECT_LT(y_pho.max_abs_diff(y_ref), 0.5 * y_ref.norm());
  EXPECT_GT(y_pho.max_abs_diff(y_ref), 0.0);  // genuinely analog
}

// ---------------------------------------------------------------------------
// Contract 3: decode is independent of interleaving (continuous batching)
// ---------------------------------------------------------------------------

TEST(Transformer, InterleavedDecodingMatchesSequentialBitwise) {
  Rng rng(41);
  const TransformerConfig config{.vocab = 24,
                                 .d_model = 12,
                                 .heads = 2,
                                 .layers = 2,
                                 .d_ff = 16,
                                 .max_seq = 24};
  const TransformerModel model = TransformerModel::random(config, rng);
  nn::FloatBackend backend;

  const std::vector<std::vector<std::size_t>> prompts = {
      random_tokens(3, config.vocab, rng),
      random_tokens(5, config.vocab, rng),
      random_tokens(1, config.vocab, rng)};

  // Sequential reference: each request decoded alone, start to finish.
  std::vector<std::vector<std::size_t>> sequential;
  for (const auto& prompt : prompts)
    sequential.push_back(model.generate(backend, prompt, 8));

  // Interleaved: round-robin one decode step per request per round — the
  // schedule continuous batching produces.  Same caches, different order.
  std::vector<KvCache> caches;
  std::vector<std::vector<std::size_t>> streams = prompts;
  std::vector<std::size_t> fed(prompts.size(), 0);
  std::vector<std::vector<double>> logits(prompts.size());
  for (std::size_t r = 0; r < prompts.size(); ++r)
    caches.push_back(model.make_cache());
  for (std::size_t round = 0; round < 16; ++round) {
    for (std::size_t r = 0; r < prompts.size(); ++r) {
      if (streams[r].size() >= sequential[r].size() &&
          fed[r] == streams[r].size()) {
        continue;  // done generating
      }
      if (fed[r] < streams[r].size()) {
        logits[r] = model.decode_step(backend, caches[r], streams[r][fed[r]]);
        ++fed[r];
      }
      if (fed[r] == streams[r].size() &&
          streams[r].size() < sequential[r].size()) {
        std::size_t best = 0;
        for (std::size_t j = 1; j < logits[r].size(); ++j)
          if (logits[r][j] > logits[r][best]) best = j;
        streams[r].push_back(best);
      }
    }
  }
  for (std::size_t r = 0; r < prompts.size(); ++r) {
    EXPECT_EQ(streams[r], sequential[r]) << "request " << r;
  }
}

TEST(Transformer, GenerateIsDeterministicAndBoundedByContextWindow) {
  Rng rng(51);
  const TransformerConfig config{.vocab = 12,
                                 .d_model = 8,
                                 .heads = 2,
                                 .layers = 1,
                                 .d_ff = 8,
                                 .max_seq = 6};
  const TransformerModel model = TransformerModel::random(config, rng);
  nn::FloatBackend backend;
  const std::vector<std::size_t> prompt = {3, 1};

  const auto a = model.generate(backend, prompt, 10);
  const auto b = model.generate(backend, prompt, 10);
  EXPECT_EQ(a, b);
  // 6-position window: 2 prompt positions leave 4 decodable continuations
  // plus the final argmax that needs no new position.
  EXPECT_LE(a.size(), config.max_seq + 1);
  EXPECT_GT(a.size(), prompt.size());
}

// ---------------------------------------------------------------------------
// Token-level serving: continuous batching
// ---------------------------------------------------------------------------

nn::TransformerModel serving_model() {
  Rng rng(71);
  const TransformerConfig config{.vocab = 16,
                                 .d_model = 8,
                                 .heads = 2,
                                 .layers = 2,
                                 .d_ff = 12,
                                 .max_seq = 24};
  return TransformerModel::random(config, rng);
}

std::vector<serve::TokenRequest> serving_requests(
    const TransformerConfig& config) {
  Rng rng(72);
  std::vector<serve::TokenRequest> requests;
  const char* tenants[] = {"acme", "acme", "globex", "initech", "globex",
                           "acme"};
  for (std::size_t i = 0; i < 6; ++i) {
    serve::TokenRequest request;
    request.id = i;
    request.tenant = tenants[i];
    request.model = "tf";
    // Near-simultaneous arrivals: decode steps are ns-scale, so a visible
    // stagger would serialize the run and no batch would ever form.
    request.arrival = static_cast<double>(i) * 1e-9;
    request.prompt = random_tokens(1 + rng.below(4), config.vocab, rng);
    request.max_new = 3 + rng.below(6);
    requests.push_back(std::move(request));
  }
  return requests;
}

TEST(TokenServing, ContinuousBatchingIsBitIdenticalToSequentialDecoding) {
  const TransformerModel model = serving_model();
  const auto requests = serving_requests(model.config());

  // 32 cores hold all of this model's static weight tiles simultaneously,
  // so back-to-back decode steps ride residency (warm passes below).
  runtime::Accelerator accelerator({.cores = 32});
  serve::ModelRegistry registry(accelerator);
  registry.add_transformer("tf", model);
  serve::TokenServer server(registry);
  const serve::TokenServeReport report =
      server.run(requests, {.schedule =
                                serve::TokenPolicy::Schedule::kContinuous,
                            .max_batch = 3});

  ASSERT_EQ(report.completed, requests.size());
  // Each request's token stream must equal decoding it alone, start to
  // finish, on the same fleet backend — continuous batching changes when
  // tokens happen, never which tokens.
  for (const auto& record : report.requests) {
    const auto& request = requests[record.id];
    const auto expected = model.generate(registry.decode_backend(),
                                         request.prompt, request.max_new);
    EXPECT_EQ(record.tokens, expected) << "request " << record.id;
    EXPECT_EQ(record.generated, record.tokens.size() - record.prompt_tokens);
    EXPECT_GE(record.first_token, record.arrival);
    EXPECT_GE(record.completion, record.first_token);
  }
  EXPECT_GT(report.tokens_per_second(), 0.0);
  EXPECT_GT(report.energy_per_token(), 0.0);
  // Static weight tiles ride residency after the first step.
  EXPECT_GT(report.warm_fraction(), 0.0);
  EXPECT_GT(report.kv_peak_rows, 0u);
}

TEST(TokenServing, ReportIsByteStableAcrossHostThreadCounts) {
  const TransformerModel model = serving_model();
  const auto requests = serving_requests(model.config());

  std::vector<std::vector<std::size_t>> tokens[3];
  double p99[3], energy[3], makespan[3];
  const std::size_t threads[] = {1, 2, 8};
  for (std::size_t i = 0; i < 3; ++i) {
    runtime::Accelerator accelerator({.cores = 4, .threads = threads[i]});
    serve::ModelRegistry registry(accelerator);
    registry.add_transformer("tf", model);
    serve::TokenServer server(registry);
    const auto report = server.run(
        requests,
        {.schedule = serve::TokenPolicy::Schedule::kContinuous,
         .max_batch = 3});
    for (const auto& record : report.requests)
      tokens[i].push_back(record.tokens);
    p99[i] = report.total.p99;
    energy[i] = report.energy;
    makespan[i] = report.makespan;
  }
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(tokens[i], tokens[0]);
    EXPECT_EQ(p99[i], p99[0]);
    EXPECT_EQ(energy[i], energy[0]);
    EXPECT_EQ(makespan[i], makespan[0]);
  }
}

TEST(TokenServing, StaticScheduleHoldsSlotsUntilTheBatchDrains) {
  const TransformerModel model = serving_model();
  const auto requests = serving_requests(model.config());

  runtime::Accelerator accelerator({.cores = 4});
  serve::ModelRegistry registry(accelerator);
  registry.add_transformer("tf", model);
  serve::TokenServer server(registry);
  const auto report = server.run(
      requests, {.schedule = serve::TokenPolicy::Schedule::kStatic,
                 .max_batch = 3});
  ASSERT_EQ(report.completed, requests.size());
  // Outputs stay bit-identical under the other schedule too.
  for (const auto& record : report.requests) {
    const auto& request = requests[record.id];
    EXPECT_EQ(record.tokens,
              model.generate(registry.decode_backend(), request.prompt,
                             request.max_new));
  }
}

TEST(TokenServing, KvBudgetPreemptsYoungestAndOutputsStayBitIdentical) {
  const TransformerModel model = serving_model();
  const auto requests = serving_requests(model.config());
  const std::size_t layers = model.config().layers;

  runtime::Accelerator accelerator({.cores = 4});
  serve::ModelRegistry registry(accelerator);
  registry.add_transformer("tf", model);
  serve::TokenServer server(registry);
  // Budget fits ~2 requests' worth of modest contexts: the third admission
  // forces growth past the line and the youngest request loses its cache.
  const auto report = server.run(
      requests, {.schedule = serve::TokenPolicy::Schedule::kContinuous,
                 .max_batch = 3,
                 .kv_budget_rows = 8 * layers});
  ASSERT_EQ(report.completed, requests.size());
  EXPECT_GT(report.preemptions, 0u);
  EXPECT_GT(report.kv_evicted_rows, 0u);
  // The budget caps concurrent KV state (a lone request may exceed it —
  // the progress guarantee — but concurrency cannot): peak residency must
  // sit well under the unbudgeted run's.
  {
    runtime::Accelerator free_accelerator({.cores = 4});
    serve::ModelRegistry free_registry(free_accelerator);
    free_registry.add_transformer("tf", model);
    serve::TokenServer free_server(free_registry);
    const auto unbudgeted = free_server.run(
        requests, {.schedule = serve::TokenPolicy::Schedule::kContinuous,
                   .max_batch = 3});
    EXPECT_LT(report.kv_peak_rows, unbudgeted.kv_peak_rows);
  }
  // Preemption drops the cache, not the result: the re-prefilled request
  // regenerates the same stream bit for bit.
  for (const auto& record : report.requests) {
    const auto& request = requests[record.id];
    EXPECT_EQ(record.tokens,
              model.generate(registry.decode_backend(), request.prompt,
                             request.max_new))
        << "request " << record.id << " (preempted " << record.preemptions
        << "x)";
  }
  // A preempted request decodes its prefill twice: it is billed for more
  // tokens than an unpreempted run would charge.
  std::size_t billed = 0;
  for (const auto& row : report.tenant_costs) billed += row.tokens;
  std::size_t lower_bound = 0;
  for (const auto& record : report.requests)
    lower_bound += record.tokens.size() - 1;
  EXPECT_GT(billed, lower_bound);
}

TEST(Transformer, DecodeRejectsBadTokensAndOverflowingContext) {
  Rng rng(61);
  const TransformerConfig config{.vocab = 8,
                                 .d_model = 8,
                                 .heads = 1,
                                 .layers = 1,
                                 .d_ff = 8,
                                 .max_seq = 2};
  const TransformerModel model = TransformerModel::random(config, rng);
  nn::FloatBackend backend;
  KvCache cache = model.make_cache();
  EXPECT_THROW(model.decode_step(backend, cache, 8), std::invalid_argument);
  model.decode_step(backend, cache, 1);
  model.decode_step(backend, cache, 2);
  EXPECT_THROW(model.decode_step(backend, cache, 3), std::invalid_argument);
  cache.clear();
  EXPECT_EQ(cache.rows(), 0u);
  model.decode_step(backend, cache, 3);  // usable again after clear()
}

}  // namespace
