// Telemetry subsystem tests: histogram bucket semantics, metrics
// exposition, span-trace determinism and linting, the golden Chrome trace
// of a small multi-tenant serve run, the zero-allocation no-op tracing
// path, and the BENCH_*.json comparison gate.
//
// Golden-trace update workflow: when a deliberate serving/trace change
// moves the committed trace, this test writes the observed JSON next to
// the golden file as serve_trace.actual.json — review the diff in
// Perfetto, then copy it over tests/golden/serve_trace.json.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "nn/transformer.hpp"
#include "runtime/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/token_server.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

// --- global allocation counter (for the zero-allocation no-op check) -------
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ptc;
using namespace ptc::serve;

// --- shared scenario --------------------------------------------------------

/// Small multi-tenant serve run on a drifting 2-core fleet with a periodic
/// recalibration policy: exercises every span kind the telemetry layer
/// emits (request lifecycles, batch windows, per-core passes and reloads,
/// per-step spans, a recalibration window, queue-depth counters).
ServeReport traced_run(telemetry::Tracer* tracer,
                       telemetry::MetricsRegistry* metrics,
                       std::size_t threads = 0) {
  runtime::AcceleratorConfig config;
  config.cores = 2;
  config.threads = threads;
  config.variation.seed = 7;
  config.drift.sigma = 0.5;
  config.drift.tau = 1e-6;
  runtime::Accelerator accelerator(config);
  ModelRegistry registry(accelerator);
  Rng rng(5);
  registry.add("small", nn::Mlp(8, 6, 4, rng));
  registry.add("wide", nn::Mlp(16, 12, 4, rng));
  Server server(registry);
  server.set_tracer(tracer);
  server.set_metrics(metrics);

  const LoadGenerator generator(
      {{.name = "alpha", .model = "small", .rate = 400e6, .requests = 6},
       {.name = "beta", .model = "wide", .rate = 150e6, .requests = 4}},
      99);
  const BatchPolicy policy{.max_batch = 4, .max_wait = 10e-9,
                           .recalibration_period = 10e-9};
  const ServeReport report = server.run(generator.generate(registry), policy);
  server.set_tracer(nullptr);
  server.set_metrics(nullptr);
  return report;
}

std::string golden_trace_path() {
  const std::string self = __FILE__;
  return self.substr(0, self.find_last_of('/')) + "/golden/serve_trace.json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- histogram --------------------------------------------------------------

TEST(Histogram, BucketBoundariesUnderflowAndOverflow) {
  telemetry::HistogramOptions options;
  options.min = 1.0;
  options.max = 1e3;
  options.buckets_per_decade = 1;  // buckets [1,10), [10,100), [100,1000)
  telemetry::Histogram h(options);
  ASSERT_EQ(h.bucket_count(), 3u);

  h.observe(0.0);     // underflow (zeros land below min)
  h.observe(0.999);   // underflow
  h.observe(1.0);     // first bucket's lower edge is inclusive
  h.observe(9.999);   // still first bucket
  h.observe(10.0);    // second bucket (upper edges are exclusive)
  h.observe(999.99);  // third bucket
  h.observe(1e3);     // overflow (max is exclusive)
  h.observe(5e6);     // overflow

  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 8u);
  // count/sum/min/max are exact regardless of bucketing.
  EXPECT_DOUBLE_EQ(h.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 5e6);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 0.999 + 1.0 + 9.999 + 10.0 + 999.99 + 1e3 +
                                5e6);
  EXPECT_DOUBLE_EQ(h.bucket_upper_edge(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper_edge(2), 1000.0);
}

TEST(Histogram, PercentileIsClampedToExactExtremes) {
  telemetry::Histogram h;
  h.observe(0.25);  // beyond max (default max = 1.0? no: 0.25 is in range)
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.25);  // single sample: clamp to max
  h.observe(0.5);
  // p100 can never exceed the exact observed maximum.
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.5);
}

TEST(Histogram, PercentilesWithinOneBucketOfExactAtScale) {
  // Satellite check: at 1M+ samples the histogram-backed percentiles stay
  // within one bucket (bucket_width_ratio) of the exact nearest-rank
  // sample while memory stays O(buckets).
  constexpr std::size_t kSamples = 1'000'000;
  telemetry::HistogramOptions options;
  options.min = 1e-9;
  options.max = 1e4;
  telemetry::Histogram h(options);
  Rng rng(11);
  std::vector<double> xs;
  xs.reserve(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    // Log-uniform over ~6 decades with a heavy tail, like a latency mix.
    const double v = 1e-6 * std::pow(10.0, 4.0 * rng.uniform());
    xs.push_back(v);
    h.observe(v);
  }
  EXPECT_EQ(h.count(), kSamples);

  std::sort(xs.begin(), xs.end());
  const double width = h.bucket_width_ratio();
  for (const double p : {50.0, 95.0, 99.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(kSamples))) - 1;
    const double exact = xs[rank];
    const double approx = h.percentile(p);
    EXPECT_LE(approx, exact * width) << "p" << p;
    EXPECT_GE(approx, exact / width) << "p" << p;
  }
}

TEST(Histogram, LatencyStatsFromHistogramTracksExact) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0, 4.0};
  telemetry::HistogramOptions options;
  options.min = 1e-2;
  options.max = 1e2;
  telemetry::Histogram h(options);
  for (const double x : xs) h.observe(x);

  const LatencyStats exact = LatencyStats::from(xs);
  const LatencyStats approx = LatencyStats::from_histogram(h);
  EXPECT_EQ(approx.count, exact.count);
  EXPECT_DOUBLE_EQ(approx.mean, exact.mean);
  EXPECT_DOUBLE_EQ(approx.max, exact.max);  // max is exact
  const double width = h.bucket_width_ratio();
  EXPECT_LE(approx.p50, exact.p50 * width);
  EXPECT_GE(approx.p50, exact.p50 / width);
  EXPECT_LE(approx.p99, exact.p99 * width);
  EXPECT_GE(approx.p99, exact.p99 / width);
}

// --- metrics registry -------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndExposition) {
  telemetry::MetricsRegistry registry;
  registry.counter("requests_total", "requests admitted").inc();
  registry.counter("requests_total").inc(2.0);
  registry.gauge("queue_depth").set(3.0);
  registry.gauge("queue_depth").set(1.0);
  registry.histogram("latency_seconds", "request latency").observe(0.25);

  EXPECT_TRUE(registry.contains("requests_total"));
  EXPECT_FALSE(registry.contains("missing"));
  EXPECT_DOUBLE_EQ(registry.counter("requests_total").value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("queue_depth").value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("queue_depth").max(), 3.0);

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# HELP requests_total requests admitted"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 1"), std::string::npos);

  // The JSON export parses and carries the same values.
  const json::Value doc = json::parse(registry.to_json());
  EXPECT_DOUBLE_EQ(
      doc.at("counters").at("requests_total").at("value").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(
      doc.at("histograms").at("latency_seconds").at("count").as_number(), 1.0);
}

TEST(MetricsRegistry, LabeledFamiliesCanonicalizeAndAccumulate) {
  telemetry::MetricsRegistry registry;
  // Key order in the call site must not matter: both spellings address the
  // same child.
  registry
      .counter("cost_total", {{"tenant", "mobile"}, {"model", "vision"}},
               "attributed cost")
      .inc(2.0);
  registry.counter("cost_total", {{"model", "vision"}, {"tenant", "mobile"}})
      .inc(3.0);
  registry.counter("cost_total", {{"tenant", "edge"}, {"model", "kw"}}).inc();

  EXPECT_TRUE(registry.contains(
      "cost_total", {{"model", "vision"}, {"tenant", "mobile"}}));
  EXPECT_FALSE(registry.contains("cost_total", {{"tenant", "nobody"}}));
  EXPECT_DOUBLE_EQ(
      registry.counter("cost_total", {{"tenant", "mobile"}, {"model", "vision"}})
          .value(),
      5.0);
  EXPECT_EQ(registry.label_sets("cost_total").size(), 2u);

  registry.gauge("burn", {{"slo", "p99"}, {"window", "short"}}).set(4.5);
  EXPECT_DOUBLE_EQ(
      registry.gauge("burn", {{"window", "short"}, {"slo", "p99"}}).value(),
      4.5);
}

TEST(MetricsRegistry, RenderLabelsFormatsSelectorsAndEscapes) {
  // render_labels takes a canonical (already sorted) set and renders it
  // verbatim; the registry sorts before calling it.
  EXPECT_EQ(telemetry::render_labels({{"a", "1"}, {"b", "2"}}),
            "{a=\"1\",b=\"2\"}");
  // Backslash, quote, and newline escape per the Prometheus text format.
  EXPECT_EQ(telemetry::render_labels({{"k", "a\\b\"c\nd"}}),
            "{k=\"a\\\\b\\\"c\\nd\"}");
}

TEST(MetricsRegistry, LabeledExpositionRoundTripsThroughTextAndJson) {
  telemetry::MetricsRegistry registry;
  registry
      .counter("tenant_energy_joules_total",
               {{"tenant", "mobile"}, {"model", "vision"}}, "energy by tenant")
      .inc(0.25);
  registry
      .counter("tenant_energy_joules_total",
               {{"tenant", "edge"}, {"model", "kw"}})
      .inc(0.75);
  registry.gauge("slo_burn_rate", {{"slo", "p99"}, {"window", "long"}})
      .set(1.5);

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE tenant_energy_joules_total counter"),
            std::string::npos);
  // One line per child, labels in canonical (sorted-key) order.
  EXPECT_NE(text.find("tenant_energy_joules_total{model=\"vision\","
                      "tenant=\"mobile\"} 0.25"),
            std::string::npos);
  EXPECT_NE(text.find(
                "tenant_energy_joules_total{model=\"kw\",tenant=\"edge\"} "
                "0.75"),
            std::string::npos);
  EXPECT_NE(text.find("slo_burn_rate{slo=\"p99\",window=\"long\"} 1.5"),
            std::string::npos);

  // JSON: a "series" array of {labels, value} objects that parses back to
  // the exact child values.
  const json::Value doc = json::parse(registry.to_json());
  const json::Value& series =
      doc.at("counters").at("tenant_energy_joules_total").at("series");
  ASSERT_EQ(series.as_array().size(), 2u);
  double mobile = 0.0, edge = 0.0;
  for (const json::Value& child : series.as_array()) {
    const std::string tenant = child.at("labels").at("tenant").as_string();
    if (tenant == "mobile") mobile = child.at("value").as_number();
    if (tenant == "edge") edge = child.at("value").as_number();
  }
  EXPECT_DOUBLE_EQ(mobile, 0.25);
  EXPECT_DOUBLE_EQ(edge, 0.75);
  const json::Value& burn =
      doc.at("gauges").at("slo_burn_rate").at("series").as_array()[0];
  EXPECT_EQ(burn.at("labels").at("window").as_string(), "long");
  EXPECT_DOUBLE_EQ(burn.at("value").as_number(), 1.5);
}

TEST(MetricsRegistry, LabeledHistogramFamiliesRoundTripThroughTextAndJson) {
  telemetry::MetricsRegistry registry;
  telemetry::HistogramOptions options;
  options.min = 1e-9;
  options.max = 1e-6;
  options.buckets_per_decade = 1;
  registry
      .histogram("trigger_lag_seconds", {{"core", "0"}},
                 "threshold-crossing -> re-lock lag [s]", options)
      .observe(5e-9);
  registry.histogram("trigger_lag_seconds", {{"core", "0"}}, "", options)
      .observe(2e-8);
  registry.histogram("trigger_lag_seconds", {{"core", "1"}}, "", options)
      .observe(1e-8);

  EXPECT_TRUE(registry.contains("trigger_lag_seconds", {{"core", "0"}}));
  EXPECT_FALSE(registry.contains("trigger_lag_seconds", {{"core", "7"}}));
  EXPECT_EQ(registry.label_sets("trigger_lag_seconds").size(), 2u);

  // Prometheus text: per-child bucket series with the child labels merged
  // into the `le` selector, and labeled _sum/_count samples.
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE trigger_lag_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("trigger_lag_seconds_bucket{core=\"0\",le=\"1e-08\"} 1"),
            std::string::npos);
  // The decade edge comes out of std::pow, so 1e-7 prints with its ulp.
  EXPECT_NE(text.find("trigger_lag_seconds_bucket{core=\"0\","
                      "le=\"1.0000000000000001e-07\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("trigger_lag_seconds_bucket{core=\"0\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("trigger_lag_seconds_sum{core=\"0\"} 2.5e-08"),
            std::string::npos);
  EXPECT_NE(text.find("trigger_lag_seconds_count{core=\"0\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("trigger_lag_seconds_count{core=\"1\"} 1"),
            std::string::npos);

  // JSON: a "series" array of {labels, summary} objects per child.
  const json::Value doc = json::parse(registry.to_json());
  const json::Value& series =
      doc.at("histograms").at("trigger_lag_seconds").at("series");
  ASSERT_EQ(series.as_array().size(), 2u);
  for (const json::Value& child : series.as_array()) {
    const std::string core = child.at("labels").at("core").as_string();
    if (core == "0") {
      EXPECT_DOUBLE_EQ(child.at("count").as_number(), 2.0);
      EXPECT_DOUBLE_EQ(child.at("sum").as_number(), 2.5e-8);
      EXPECT_DOUBLE_EQ(child.at("min").as_number(), 5e-9);
      EXPECT_DOUBLE_EQ(child.at("max").as_number(), 2e-8);
    } else {
      EXPECT_EQ(core, "1");
      EXPECT_DOUBLE_EQ(child.at("count").as_number(), 1.0);
    }
  }

  // Kind collisions still reject across the labeled/plain split.
  EXPECT_THROW(registry.counter("trigger_lag_seconds"), std::invalid_argument);
}

// --- JSON parser ------------------------------------------------------------

TEST(Json, ParsesDocumentsAndRejectsGarbage) {
  const json::Value v = json::parse(
      R"({"a": [1, 2.5, -3e2], "s": "x\n\"y\"", "t": true, "n": null})");
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[2].as_number(), -300.0);
  EXPECT_EQ(v.at("s").as_string(), "x\n\"y\"");
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_TRUE(v.at("n").is_null());
  EXPECT_FALSE(v.contains("missing"));

  EXPECT_THROW(json::parse("{"), std::invalid_argument);
  EXPECT_THROW(json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(json::parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW(v.at("s").as_number(), std::invalid_argument);
}

TEST(Json, NumberFormattingRoundTrips) {
  EXPECT_EQ(json::format_number(0.25), "0.25");
  EXPECT_EQ(json::format_number(3.0), "3");
  EXPECT_EQ(json::format_number(-17.0), "-17");
  for (const double x : {1.0 / 3.0, 6.02e23, 1.602e-19, 5.2210802950884208e-7,
                         123456789.123}) {
    const std::string text = json::format_number(x);
    EXPECT_DOUBLE_EQ(std::strtod(text.c_str(), nullptr), x) << text;
  }
  EXPECT_EQ(json::quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}

// --- span tracing -----------------------------------------------------------

TEST(Trace, SpanCountsMatchServeReport) {
  telemetry::Tracer tracer;
  const ServeReport report = traced_run(&tracer, nullptr);
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(tracer.count(telemetry::TraceEvent::Phase::kAsyncBegin, "request"),
            report.completed);
  EXPECT_EQ(tracer.count(telemetry::TraceEvent::Phase::kAsyncEnd, "request"),
            report.completed);
  EXPECT_EQ(tracer.count(telemetry::TraceEvent::Phase::kComplete, "batch"),
            report.dispatched_batches);
  // The drifting fleet under the periodic policy recalibrates: the serve
  // track carries one window span per recalibration.
  EXPECT_GT(report.recalibrations, 0u);
  EXPECT_EQ(tracer.count(telemetry::TraceEvent::Phase::kComplete, "serve"),
            report.recalibrations);
  // Hardware + step spans exist and sit inside batch windows by
  // construction (the linter re-checks nesting from the serialized JSON).
  EXPECT_GT(tracer.count(telemetry::TraceEvent::Phase::kComplete, "fleet"),
            0u);
  EXPECT_GT(tracer.count(telemetry::TraceEvent::Phase::kComplete, "step"), 0u);
}

TEST(Trace, EmittedTraceIsLintClean) {
  telemetry::Tracer tracer;
  traced_run(&tracer, nullptr);
  const std::vector<std::string> problems =
      telemetry::lint_chrome_trace(tracer.chrome_json());
  EXPECT_TRUE(problems.empty())
      << "first problem: " << (problems.empty() ? "" : problems.front());
}

TEST(Trace, LintCatchesBadNestingAndUnpairedAsync) {
  // Two overlapping (non-nested) complete spans on one track.
  const std::string overlapping = R"({"traceEvents": [
    {"ph": "X", "name": "a", "cat": "t", "pid": 1, "tid": 1, "ts": 0, "dur": 10},
    {"ph": "X", "name": "b", "cat": "t", "pid": 1, "tid": 1, "ts": 5, "dur": 10}
  ]})";
  EXPECT_FALSE(telemetry::lint_chrome_trace(overlapping).empty());

  const std::string unpaired = R"({"traceEvents": [
    {"ph": "b", "name": "r", "cat": "req", "pid": 1, "id": "7", "ts": 0}
  ]})";
  EXPECT_FALSE(telemetry::lint_chrome_trace(unpaired).empty());

  EXPECT_FALSE(telemetry::lint_chrome_trace("not json").empty());
  EXPECT_FALSE(telemetry::lint_chrome_trace("{}").empty());
}

TEST(Trace, LintCatchesCounterTimeRegression) {
  // A counter sample behind its predecessor on the same (pid, tid, name)
  // is a stale-clock bug the linter must flag.
  const std::string regressing = R"({"traceEvents": [
    {"ph": "C", "name": "queue_depth", "pid": 1, "tid": 3, "ts": 10, "args": {"value": 1}},
    {"ph": "C", "name": "queue_depth", "pid": 1, "tid": 3, "ts": 5, "args": {"value": 2}}
  ]})";
  const std::vector<std::string> problems =
      telemetry::lint_chrome_trace(regressing);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("goes back in time"), std::string::npos);

  // Equal timestamps are fine, and the same counter name on another track
  // is an independent series.
  const std::string clean = R"({"traceEvents": [
    {"ph": "C", "name": "queue_depth", "pid": 1, "tid": 3, "ts": 10, "args": {"value": 1}},
    {"ph": "C", "name": "queue_depth", "pid": 1, "tid": 3, "ts": 10, "args": {"value": 2}},
    {"ph": "C", "name": "queue_depth", "pid": 1, "tid": 4, "ts": 0, "args": {"value": 0}}
  ]})";
  EXPECT_TRUE(telemetry::lint_chrome_trace(clean).empty());
}

TEST(Trace, LintEnforcesHealthAlertArgSchema) {
  // health_alert instants must carry a string "slo" and a numeric "core".
  const std::string missing_args = R"({"traceEvents": [
    {"ph": "i", "name": "health_alert", "cat": "slo", "pid": 1, "tid": 1, "ts": 3}
  ]})";
  EXPECT_EQ(telemetry::lint_chrome_trace(missing_args).size(), 2u);

  const std::string wrong_types = R"({"traceEvents": [
    {"ph": "i", "name": "health_alert", "cat": "slo", "pid": 1, "tid": 1,
     "ts": 3, "args": {"slo": 7, "core": "zero"}}
  ]})";
  EXPECT_EQ(telemetry::lint_chrome_trace(wrong_types).size(), 2u);

  const std::string conforming = R"({"traceEvents": [
    {"ph": "i", "name": "health_alert", "cat": "slo", "pid": 1, "tid": 1,
     "ts": 3, "args": {"slo": "core0-probe-anomaly", "core": 0, "value": 1.5}}
  ]})";
  EXPECT_TRUE(telemetry::lint_chrome_trace(conforming).empty());

  // Other instants are exempt from the schema.
  const std::string other = R"({"traceEvents": [
    {"ph": "i", "name": "slo_alert", "cat": "slo", "pid": 1, "tid": 1, "ts": 3}
  ]})";
  EXPECT_TRUE(telemetry::lint_chrome_trace(other).empty());
}

TEST(Trace, LintEnforcesFaultInstantArgSchemas) {
  // fault_injected / fault_cleared need a string "kind" and numeric "core".
  const std::string missing_args = R"({"traceEvents": [
    {"ph": "i", "name": "fault_injected", "cat": "fault", "pid": 1, "tid": 1,
     "ts": 3}
  ]})";
  EXPECT_EQ(telemetry::lint_chrome_trace(missing_args).size(), 2u);

  const std::string wrong_types = R"({"traceEvents": [
    {"ph": "i", "name": "fault_cleared", "cat": "fault", "pid": 1, "tid": 1,
     "ts": 3, "args": {"kind": 2, "core": "one"}}
  ]})";
  EXPECT_EQ(telemetry::lint_chrome_trace(wrong_types).size(), 2u);

  // core_evicted / core_readmitted need a numeric "core".
  const std::string evict_missing = R"({"traceEvents": [
    {"ph": "i", "name": "core_evicted", "cat": "fault", "pid": 1, "tid": 1,
     "ts": 3}
  ]})";
  EXPECT_EQ(telemetry::lint_chrome_trace(evict_missing).size(), 1u);

  const std::string readmit_wrong = R"({"traceEvents": [
    {"ph": "i", "name": "core_readmitted", "cat": "fault", "pid": 1,
     "tid": 1, "ts": 3, "args": {"core": "two"}}
  ]})";
  EXPECT_EQ(telemetry::lint_chrome_trace(readmit_wrong).size(), 1u);

  const std::string conforming = R"({"traceEvents": [
    {"ph": "i", "name": "fault_injected", "cat": "fault", "pid": 1, "tid": 1,
     "ts": 1, "args": {"kind": "DEADRINGS", "core": 2}},
    {"ph": "i", "name": "core_evicted", "cat": "fault", "pid": 1, "tid": 1,
     "ts": 2, "args": {"core": 2}},
    {"ph": "i", "name": "fault_cleared", "cat": "fault", "pid": 1, "tid": 1,
     "ts": 3, "args": {"kind": "CLEAR", "core": 2}},
    {"ph": "i", "name": "core_readmitted", "cat": "fault", "pid": 1,
     "tid": 1, "ts": 4, "args": {"core": 2}}
  ]})";
  EXPECT_TRUE(telemetry::lint_chrome_trace(conforming).empty());
}

TEST(Trace, LintEnforcesTokenServingInstantArgSchemas) {
  // token_step instants need numeric "batch" and "passes".
  const std::string step_missing = R"({"traceEvents": [
    {"ph": "i", "name": "token_step", "cat": "serve", "pid": 1, "tid": 1,
     "ts": 3}
  ]})";
  EXPECT_EQ(telemetry::lint_chrome_trace(step_missing).size(), 2u);

  const std::string step_wrong = R"({"traceEvents": [
    {"ph": "i", "name": "token_step", "cat": "serve", "pid": 1, "tid": 1,
     "ts": 3, "args": {"batch": "four", "passes": "many"}}
  ]})";
  EXPECT_EQ(telemetry::lint_chrome_trace(step_wrong).size(), 2u);

  // kv_evicted needs a string "tenant" and numeric "rows".
  const std::string evict_missing = R"({"traceEvents": [
    {"ph": "i", "name": "kv_evicted", "cat": "serve", "pid": 1, "tid": 1,
     "ts": 3, "args": {"rows": 4}}
  ]})";
  EXPECT_EQ(telemetry::lint_chrome_trace(evict_missing).size(), 1u);

  const std::string evict_wrong = R"({"traceEvents": [
    {"ph": "i", "name": "kv_evicted", "cat": "serve", "pid": 1, "tid": 1,
     "ts": 3, "args": {"tenant": 7, "rows": "four"}}
  ]})";
  EXPECT_EQ(telemetry::lint_chrome_trace(evict_wrong).size(), 2u);

  // request_preempted needs a string "tenant" and numeric "request".
  const std::string preempt_missing = R"({"traceEvents": [
    {"ph": "i", "name": "request_preempted", "cat": "serve", "pid": 1,
     "tid": 1, "ts": 3}
  ]})";
  EXPECT_EQ(telemetry::lint_chrome_trace(preempt_missing).size(), 2u);

  const std::string conforming = R"({"traceEvents": [
    {"ph": "i", "name": "token_step", "cat": "serve", "pid": 1, "tid": 1,
     "ts": 1, "args": {"batch": 4, "passes": 30, "warm_passes": 26}},
    {"ph": "i", "name": "request_preempted", "cat": "serve", "pid": 1,
     "tid": 1, "ts": 2, "args": {"tenant": "acme", "request": 3}},
    {"ph": "i", "name": "kv_evicted", "cat": "serve", "pid": 1, "tid": 1,
     "ts": 2, "args": {"tenant": "acme", "rows": 6}}
  ]})";
  EXPECT_TRUE(telemetry::lint_chrome_trace(conforming).empty());
}

TEST(Trace, TokenServerRunEmitsLintCleanTokenInstants) {
  // An end-to-end token-serving run under a tight KV budget emits
  // token_step / request_preempted / kv_evicted instants that pass the
  // linter's arg schemas.
  runtime::AcceleratorConfig config;
  config.cores = 4;
  config.variation.seed = 7;
  runtime::Accelerator accelerator(config);
  serve::ModelRegistry registry(accelerator);
  nn::TransformerConfig tf_config;
  tf_config.vocab = 16;
  tf_config.d_model = 8;
  tf_config.heads = 2;
  tf_config.layers = 2;
  tf_config.d_ff = 12;
  tf_config.max_seq = 24;
  Rng rng(71);
  registry.add_transformer("tf",
                           nn::TransformerModel::random(tf_config, rng));

  std::vector<serve::TokenRequest> requests;
  Rng load(72);
  for (std::size_t i = 0; i < 6; ++i) {
    serve::TokenRequest request;
    request.id = i;
    request.tenant = i % 2 == 0 ? "acme" : "globex";
    request.model = "tf";
    request.arrival = static_cast<double>(i) * 1e-9;
    const std::size_t prompt_len = 1 + load.below(4);
    for (std::size_t t = 0; t < prompt_len; ++t) {
      request.prompt.push_back(load.below(tf_config.vocab));
    }
    request.max_new = 3 + load.below(6);
    requests.push_back(std::move(request));
  }

  serve::TokenServer server(registry);
  telemetry::Tracer tracer;
  server.set_tracer(&tracer);
  serve::TokenPolicy policy;
  policy.schedule = serve::TokenPolicy::Schedule::kContinuous;
  policy.kv_budget_rows = 8 * tf_config.layers;
  const serve::TokenServeReport report = server.run(requests, policy);
  ASSERT_GT(report.preemptions, 0u);

  std::size_t token_steps = 0;
  std::size_t preempts = 0;
  std::size_t evictions = 0;
  for (const telemetry::TraceEvent& event : tracer.events()) {
    if (event.name == "token_step") ++token_steps;
    if (event.name == "request_preempted") ++preempts;
    if (event.name == "kv_evicted") ++evictions;
  }
  EXPECT_EQ(token_steps, report.steps);
  EXPECT_EQ(preempts, report.preemptions);
  EXPECT_EQ(evictions, report.preemptions);  // one eviction per preemption
  const std::vector<std::string> problems =
      telemetry::lint_chrome_trace(tracer.chrome_json());
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Trace, ServerFaultRunEmitsLintCleanFaultInstants) {
  // An end-to-end fault run's trace carries the fault_injected /
  // core_evicted / fault_cleared / core_readmitted instants and passes the
  // linter's arg schemas.
  runtime::AcceleratorConfig config;
  config.cores = 4;
  config.variation.seed = 42;
  runtime::Accelerator accelerator(config);
  serve::ModelRegistry registry(accelerator);
  Rng rng(7);
  registry.add("m", nn::Mlp(32, 16, 10, rng));
  serve::Server server(registry);
  server.set_fault_schedule(
      {{.time = 5e-9, .core = 1,
        .kind = runtime::FaultEvent::Kind::kDeadRings, .count = 64,
        .seed = 3},
       {.time = 200e-9, .core = 1,
        .kind = runtime::FaultEvent::Kind::kClear}});
  telemetry::Tracer tracer;
  server.set_tracer(&tracer);
  const serve::LoadGenerator generator(
      {{.name = "t", .model = "m", .rate = 100e6, .requests = 48}}, 1234);
  server.run(generator.generate(registry),
             {.max_batch = 8, .max_wait = 20e-9, .evict_on_fault = true,
              .recalibrate_on_fault = true});

  std::size_t fault_instants = 0;
  for (const telemetry::TraceEvent& event : tracer.events()) {
    if (event.name == "fault_injected" || event.name == "fault_cleared" ||
        event.name == "core_evicted" || event.name == "core_readmitted") {
      ++fault_instants;
    }
  }
  EXPECT_EQ(fault_instants, 4u);
  const std::vector<std::string> problems =
      telemetry::lint_chrome_trace(tracer.chrome_json());
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Trace, BitIdenticalAcrossHostThreadCounts) {
  // The determinism contract: the trace and the metrics exposition are
  // pure functions of the modeled schedule, independent of host threading.
  std::vector<std::string> traces, metrics_texts;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    telemetry::Tracer tracer;
    telemetry::MetricsRegistry metrics;
    traced_run(&tracer, &metrics, threads);
    traces.push_back(tracer.chrome_json());
    metrics_texts.push_back(metrics.prometheus_text());
  }
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(traces[0], traces[2]);
  EXPECT_EQ(metrics_texts[0], metrics_texts[1]);
  EXPECT_EQ(metrics_texts[0], metrics_texts[2]);
}

TEST(Trace, MatchesCommittedGoldenChromeTrace) {
  telemetry::Tracer tracer;
  traced_run(&tracer, nullptr);
  const std::string actual = tracer.chrome_json();
  const std::string golden = read_file(golden_trace_path());
  if (actual != golden) {
    const std::string actual_path =
        golden_trace_path() + ".actual";  // next to the golden, for diffing
    std::ofstream(actual_path) << actual;
    FAIL() << "trace diverged from tests/golden/serve_trace.json; wrote "
           << actual_path
           << " — review the diff (ui.perfetto.dev renders both), then copy "
              "it over the golden file if the change is intended";
  }
}

TEST(Trace, UnattachedEmissionSitesDoNotAllocate) {
  // The no-op path every instrumented layer compiles down to: a nullptr
  // guard around the emission call.  Argument lists are initializer_lists
  // of non-owning PODs, so nothing is evaluated or heap-allocated when no
  // sink is attached.
  telemetry::Tracer* tracer = nullptr;
  const std::string name = "pass";  // allocate *before* the measured region
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < 1000; ++i) {
    if (tracer != nullptr) {
      tracer->complete(telemetry::track::kCoreBase, name.c_str(), "fleet",
                       1.0 * static_cast<double>(i), 2.0,
                       {{"pass", i}, {"cold", true}});
    }
    if (tracer != nullptr) {
      tracer->async_begin("request", "request", i, 0.0, {{"tenant", "a"}});
    }
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST(Trace, ChromeJsonCarriesMetadataAndMicroseconds) {
  telemetry::Tracer tracer;
  tracer.set_track_name(telemetry::track::kServe, "serving");
  tracer.complete(telemetry::track::kServe, "batch", "batch", 1e-6, 3e-6,
                  {{"size", std::size_t{4}}});
  const json::Value doc = json::parse(tracer.chrome_json());
  const auto& events = doc.at("traceEvents").as_array();
  bool found_meta = false, found_span = false;
  for (const json::Value& e : events) {
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "thread_name") {
      found_meta = true;
    }
    if (e.at("ph").as_string() == "X") {
      found_span = true;
      EXPECT_DOUBLE_EQ(e.at("ts").as_number(), 1.0);   // 1 us
      EXPECT_DOUBLE_EQ(e.at("dur").as_number(), 2.0);  // 2 us
      EXPECT_DOUBLE_EQ(e.at("args").at("size").as_number(), 4.0);
    }
  }
  EXPECT_TRUE(found_meta);
  EXPECT_TRUE(found_span);
}

// --- serve integration ------------------------------------------------------

TEST(Serve, KeepRecordsFalseDropsTracesButKeepsSummaries) {
  telemetry::Tracer tracer;
  const ServeReport full = traced_run(&tracer, nullptr);

  // Re-run the identical scenario without record retention.
  runtime::AcceleratorConfig config;
  config.cores = 2;
  config.variation.seed = 7;
  config.drift.sigma = 0.5;
  config.drift.tau = 1e-6;
  runtime::Accelerator accelerator(config);
  ModelRegistry registry(accelerator);
  Rng rng(5);
  registry.add("small", nn::Mlp(8, 6, 4, rng));
  registry.add("wide", nn::Mlp(16, 12, 4, rng));
  Server server(registry);
  const LoadGenerator generator(
      {{.name = "alpha", .model = "small", .rate = 400e6, .requests = 6},
       {.name = "beta", .model = "wide", .rate = 150e6, .requests = 4}},
      99);
  const BatchPolicy policy{.max_batch = 4, .max_wait = 10e-9,
                           .recalibration_period = 10e-9};
  const ServeReport lean = server.run(generator.generate(registry), policy,
                                      {.keep_records = false});

  EXPECT_TRUE(lean.requests.empty());
  EXPECT_TRUE(lean.batches.empty());
  EXPECT_EQ(lean.completed, full.completed);
  EXPECT_EQ(lean.dispatched_batches, full.dispatched_batches);
  EXPECT_DOUBLE_EQ(lean.makespan, full.makespan);
  EXPECT_DOUBLE_EQ(lean.total.p99, full.total.p99);
  EXPECT_DOUBLE_EQ(lean.total.mean, full.total.mean);
  EXPECT_EQ(lean.total.count, full.total.count);
  EXPECT_DOUBLE_EQ(lean.throughput(), full.throughput());
  EXPECT_DOUBLE_EQ(lean.mean_batch(), full.mean_batch());
  EXPECT_EQ(lean.reference_matches, full.reference_matches);
}

TEST(Serve, MetricsRegistryCarriesFleetAndServeTallies) {
  telemetry::MetricsRegistry metrics;
  const ServeReport report = traced_run(nullptr, &metrics);
  EXPECT_DOUBLE_EQ(metrics.counter("serve_requests_total").value(),
                   static_cast<double>(report.completed));
  EXPECT_DOUBLE_EQ(metrics.counter("serve_batches_total").value(),
                   static_cast<double>(report.dispatched_batches));
  EXPECT_DOUBLE_EQ(metrics.counter("serve_recalibrations_total").value(),
                   static_cast<double>(report.recalibrations));
  EXPECT_DOUBLE_EQ(metrics.counter("serve_warm_batches_total").value() +
                       metrics.counter("serve_cold_batches_total").value(),
                   static_cast<double>(report.dispatched_batches));
  EXPECT_DOUBLE_EQ(metrics.counter("fleet_tile_passes_total").value(),
                   static_cast<double>(report.passes));
  EXPECT_GT(metrics.counter("fleet_matmuls_total").value(), 0.0);
  EXPECT_GT(metrics.counter("fleet_plan_cache_hits_total").value(), 0.0);
  EXPECT_EQ(metrics.histogram("serve_total_seconds").count(),
            report.completed);
}

// --- bench report / comparison gate ----------------------------------------

telemetry::BenchReport sample_report(double speedup, double p99) {
  telemetry::BenchReport report("sample");
  report.set_meta("cores", 8.0);
  report.add_metric("speedup", speedup, "x",
                    telemetry::Direction::kHigherIsBetter, 0.4);
  report.add_metric("p99", p99, "s", telemetry::Direction::kLowerIsBetter,
                    0.05);
  report.add_info("wall_clock", 1.25, "s");
  return report;
}

TEST(BenchReport, RoundTripsThroughJson) {
  const telemetry::BenchReport report = sample_report(10.0, 2e-8);
  const json::Value doc = json::parse(report.to_json());
  EXPECT_DOUBLE_EQ(doc.at("schema_version").as_number(),
                   telemetry::BenchReport::kSchemaVersion);
  EXPECT_EQ(doc.at("bench").as_string(), "sample");
  EXPECT_DOUBLE_EQ(doc.at("meta").at("cores").as_number(), 8.0);
  const auto& metrics = doc.at("metrics").as_array();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].at("name").as_string(), "speedup");
  EXPECT_EQ(metrics[0].at("direction").as_string(), "higher");
  EXPECT_DOUBLE_EQ(metrics[0].at("tolerance").as_number(), 0.4);
  EXPECT_EQ(metrics[2].at("direction").as_string(), "none");
}

TEST(BenchCompare, PassesWithinToleranceAndFailsOnRegression) {
  const json::Value baseline = json::parse(sample_report(10.0, 2e-8).to_json());

  // Identical run: pass.
  EXPECT_TRUE(telemetry::compare_bench_reports(baseline, baseline).pass);
  // Small wobble inside tolerance: pass.
  EXPECT_TRUE(telemetry::compare_bench_reports(
                  baseline, json::parse(sample_report(8.0, 2.04e-8).to_json()))
                  .pass);
  // Injected 2x slowdown of the gated speedup: fail.
  const telemetry::BenchComparison slow = telemetry::compare_bench_reports(
      baseline, json::parse(sample_report(5.0, 2e-8).to_json()));
  EXPECT_FALSE(slow.pass);
  bool flagged = false;
  for (const telemetry::MetricComparison& m : slow.metrics) {
    if (m.name == "speedup") flagged = m.regressed;
  }
  EXPECT_TRUE(flagged);
  // 2x p99 regression (lower-is-better): fail.
  EXPECT_FALSE(telemetry::compare_bench_reports(
                   baseline, json::parse(sample_report(10.0, 4e-8).to_json()))
                   .pass);
  // Improvements never gate.
  EXPECT_TRUE(telemetry::compare_bench_reports(
                  baseline, json::parse(sample_report(20.0, 1e-8).to_json()))
                  .pass);
}

TEST(BenchCompare, GatedMetricMissingFromCurrentFails) {
  const json::Value baseline = json::parse(sample_report(10.0, 2e-8).to_json());
  telemetry::BenchReport partial("sample");
  partial.add_metric("speedup", 10.0, "x",
                     telemetry::Direction::kHigherIsBetter, 0.4);
  const telemetry::BenchComparison comparison =
      telemetry::compare_bench_reports(baseline,
                                       json::parse(partial.to_json()));
  EXPECT_FALSE(comparison.pass);  // gated "p99" vanished
}

TEST(BenchCompare, MismatchedBenchNameOrSchemaFails) {
  const json::Value baseline = json::parse(sample_report(10.0, 2e-8).to_json());
  const json::Value other =
      json::parse(telemetry::BenchReport("different").to_json());
  EXPECT_FALSE(telemetry::compare_bench_reports(baseline, other).pass);
}

TEST(BenchCompare, CommittedBaselinesAreSelfConsistent) {
  // The committed BENCH_*.json baselines must parse under the current
  // schema and pass when compared against themselves — guards against
  // committing a hand-edited or stale-schema baseline.
  const std::string self = __FILE__;
  const std::string repo = self.substr(0, self.find_last_of('/')) + "/..";
  for (const char* name :
       {"BENCH_perf.json", "BENCH_drift.json", "BENCH_serving.json"}) {
    const std::string path = repo + "/" + name;
    const telemetry::BenchComparison comparison =
        telemetry::compare_bench_files(path, path);
    EXPECT_TRUE(comparison.pass) << name;
    EXPECT_TRUE(comparison.problems.empty()) << name;
  }
}

}  // namespace
