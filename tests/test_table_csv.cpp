#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace {

using namespace ptc;

TEST(Table, RendersAlignedColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22.5"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, RejectsMismatchedRow) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(Table, NumFormatsCompactly) {
  EXPECT_EQ(TablePrinter::num(4.096), "4.1");
  EXPECT_EQ(TablePrinter::num(4.096, 4), "4.096");
  EXPECT_EQ(TablePrinter::num(0.5), "0.5");
}

TEST(Csv, WritesHeaderAndRows) {
  CsvWriter csv({"t", "v"});
  csv.add_row({0.0, 1.5});
  csv.add_row({1.0, 2.5});
  std::ostringstream os;
  csv.write(os);
  EXPECT_EQ(os.str(), "t,v\n0,1.5\n1,2.5\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(Csv, RejectsBadRowsAndFiles) {
  CsvWriter csv({"a"});
  EXPECT_THROW(csv.add_row({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(csv.write_file("/nonexistent-dir/foo.csv"), std::runtime_error);
}

TEST(Csv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ptc_csv_test.csv";
  CsvWriter csv({"x", "y", "z"});
  csv.add_row({1.0, 2.0, 3.0});
  csv.write_file(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "x,y,z");
  EXPECT_EQ(row, "1,2,3");
  std::remove(path.c_str());
}

}  // namespace
