#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.hpp"
#include "core/vector_macro.hpp"

namespace {

using namespace ptc::core;

TEST(VectorMacro, DefaultsMatchPaperGeometry) {
  const VectorComputeMacro macro;
  EXPECT_EQ(macro.channels(), 4u);
  EXPECT_EQ(macro.weight_bits(), 3u);
  EXPECT_EQ(macro.max_weight(), 7u);
}

TEST(VectorMacro, ZeroWeightsGiveNearZeroOutput) {
  VectorComputeMacro macro;
  macro.load_weights({0, 0, 0, 0});
  const auto result = macro.multiply({1.0, 1.0, 1.0, 1.0});
  // Only extinction-floor leakage remains.
  EXPECT_LT(result.normalized, 0.02);
}

TEST(VectorMacro, FullScaleIsUnity) {
  VectorComputeMacro macro;
  macro.load_weights({7, 7, 7, 7});
  const auto result = macro.multiply({1.0, 1.0, 1.0, 1.0});
  EXPECT_NEAR(result.normalized, 1.0, 1e-9);  // self-calibrated
}

TEST(VectorMacro, ZeroInputGivesNearZero) {
  VectorComputeMacro macro;
  macro.load_weights({7, 7, 7, 7});
  const auto result = macro.multiply({0.0, 0.0, 0.0, 0.0});
  EXPECT_LT(result.normalized, 0.01);  // encoder extinction floor only
}

class OneBitProducts
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(OneBitProducts, BinaryWeightVectorsActAsMasks) {
  const auto [w0, w1, w2, w3] = GetParam();
  VectorMacroConfig config;
  config.weight_bits = 1;
  VectorComputeMacro macro(config);
  macro.load_weights({static_cast<std::uint32_t>(w0),
                      static_cast<std::uint32_t>(w1),
                      static_cast<std::uint32_t>(w2),
                      static_cast<std::uint32_t>(w3)});
  const std::vector<double> in{1.0, 1.0, 1.0, 1.0};
  const auto result = macro.multiply(in);
  const double expected = macro.ideal_normalized(in);
  EXPECT_NEAR(result.normalized, expected, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    AllMasks, OneBitProducts,
    ::testing::Values(std::make_tuple(0, 0, 0, 0), std::make_tuple(1, 0, 0, 0),
                      std::make_tuple(0, 1, 0, 0), std::make_tuple(0, 0, 1, 0),
                      std::make_tuple(0, 0, 0, 1), std::make_tuple(1, 1, 0, 0),
                      std::make_tuple(1, 0, 1, 0), std::make_tuple(0, 1, 0, 1),
                      std::make_tuple(1, 1, 1, 1)));

class WeightSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WeightSweep, SingleChannelWeightScaling) {
  // Channel 0 carries the weight under test; all inputs on channel 0 only.
  const std::uint32_t w = GetParam();
  VectorComputeMacro macro;
  macro.load_weights({w, 0, 0, 0});
  const std::vector<double> in{1.0, 0.0, 0.0, 0.0};
  const auto result = macro.multiply(in);
  EXPECT_NEAR(result.normalized, macro.ideal_normalized(in), 0.015)
      << "weight " << w;
}

INSTANTIATE_TEST_SUITE_P(Weights, WeightSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

TEST(VectorMacro, MixedVectorAgainstIdeal) {
  VectorComputeMacro macro;
  macro.load_weights({7, 3, 5, 1});
  const std::vector<double> in{1.0, 0.5, 0.25, 0.8};
  const auto result = macro.multiply(in);
  EXPECT_NEAR(result.normalized, macro.ideal_normalized(in), 0.01);
}

TEST(VectorMacro, LinearityAcrossInputScale) {
  // Fig. 7's core claim: the normalized photocurrent tracks the ideal
  // vector product linearly.
  VectorComputeMacro macro;
  macro.load_weights({6, 2, 7, 4});
  std::vector<double> ideals, measured;
  for (double scale = 0.0; scale <= 1.0; scale += 0.05) {
    const std::vector<double> in{scale, scale * 0.7, scale * 0.4, scale};
    ideals.push_back(macro.ideal_normalized(in));
    measured.push_back(macro.multiply(in).normalized);
  }
  const auto fit = ptc::linear_fit(ideals, measured);
  EXPECT_GT(fit.r_squared, 0.999);
  EXPECT_NEAR(fit.slope, 1.0, 0.05);
}

TEST(VectorMacro, PerBitCurrentsAreBinaryWeighted) {
  VectorComputeMacro macro;
  macro.load_weights({7, 7, 7, 7});  // all bits set
  const auto result = macro.multiply({1.0, 1.0, 1.0, 1.0});
  ASSERT_EQ(result.per_bit_current.size(), 3u);
  // MSB row carries IN/2, next IN/4, LSB IN/8 -> 2:1 ratios between rows,
  // times the 0.1 dB excess loss of the extra splitter stage (x1.0233).
  const double expected_ratio = 2.0 * std::pow(10.0, 0.01);
  EXPECT_NEAR(result.per_bit_current[0] / result.per_bit_current[1],
              expected_ratio, 0.01);
  EXPECT_NEAR(result.per_bit_current[1] / result.per_bit_current[2],
              expected_ratio, 0.01);
}

TEST(VectorMacro, CrosstalkOnOtherChannelsIsSmall) {
  VectorComputeMacro macro;
  // Channel 0's ring on resonance; channels 1..3 pass nearly intact.  The
  // chain includes each channel's *own* off-state ring (~0.97 insertion),
  // so the crosstalk added by the resonant ring 0 must be the small part.
  macro.load_weights({0, 7, 7, 7});
  for (std::size_t ch = 1; ch < 4; ++ch) {
    for (unsigned row = 0; row < 3; ++row) {
      EXPECT_GT(macro.chain_transmission(row, ch), 0.95)
          << "row " << row << " channel " << ch;
    }
  }
  // Isolate ring 0's contribution: with all weights passing, the chain
  // changes by well under 1% when ring 0 goes on resonance.
  const double before = macro.chain_transmission(0, 1);
  macro.load_weights({7, 7, 7, 7});
  const double after = macro.chain_transmission(0, 1);
  EXPECT_NEAR(before / after, 1.0, 0.01);
}

TEST(VectorMacro, WdmChannelsComputeIndependently) {
  VectorComputeMacro macro;
  macro.load_weights({7, 7, 0, 0});
  // Only channel 1 illuminated: result equals channel 1's share.
  const std::vector<double> in{0.0, 1.0, 0.0, 0.0};
  const auto result = macro.multiply(in);
  EXPECT_NEAR(result.normalized, macro.ideal_normalized(in), 0.015);
}

TEST(VectorMacro, CombWallPower) {
  const VectorComputeMacro macro;
  // 4 lines x 2.2 mW / 0.23.
  EXPECT_NEAR(macro.comb_wall_power() * 1e3, 38.26, 0.1);
}

TEST(VectorMacro, RejectsBadUsage) {
  VectorComputeMacro macro;
  EXPECT_THROW(macro.load_weights({1, 2}), std::invalid_argument);
  EXPECT_THROW(macro.load_weights({8, 0, 0, 0}), std::invalid_argument);
  macro.load_weights({1, 1, 1, 1});
  EXPECT_THROW(macro.multiply({1.0}), std::invalid_argument);
  EXPECT_THROW(macro.multiply({2.0, 0.0, 0.0, 0.0}), std::invalid_argument);
}

TEST(VectorMacro, FiveBitPrecisionStillLinear) {
  VectorMacroConfig config;
  config.weight_bits = 5;
  VectorComputeMacro macro(config);
  macro.load_weights({31, 17, 9, 25});
  const std::vector<double> in{0.9, 0.3, 0.6, 0.1};
  EXPECT_NEAR(macro.multiply(in).normalized, macro.ideal_normalized(in), 0.01);
}

}  // namespace
