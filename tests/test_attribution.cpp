// Cost attribution and SLO monitoring through the serving loop.
//
// The conservation contract under test: ServeReport's fleet totals are
// *derived* from the per-tenant attribution rows (summed in sorted-tenant
// order), so per-tenant costs sum to the fleet totals bit-exactly — not
// within a tolerance — on any host thread count.  A cost path that forgets
// to attribute (or double-bills) breaks these sums exactly, which is the
// point: the billing ledger and the fleet report cannot drift apart.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "nn/transformer.hpp"
#include "runtime/accelerator.hpp"
#include "serve/attribution.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/slo.hpp"
#include "serve/token_server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace ptc;
using namespace ptc::serve;

/// Multi-tenant golden scenario on a varied, drifting fleet with periodic
/// recalibration: mixed-model batches, warm and cold passes, and a fleet
/// overhead row all show up in the attribution.
ServeReport golden_run(std::size_t threads,
                       telemetry::MetricsRegistry* metrics = nullptr,
                       std::vector<SloObjective> slos = {}) {
  runtime::AcceleratorConfig config;
  config.cores = 4;
  config.threads = threads;
  config.variation.seed = 7;
  config.drift.sigma = 0.5;
  config.drift.tau = 1e-6;
  runtime::Accelerator accelerator(config);
  ModelRegistry registry(accelerator);
  Rng rng(2025);
  registry.add("vision", nn::Mlp(32, 24, 10, rng));
  registry.add("keyword", nn::Mlp(16, 12, 4, rng));
  Server server(registry);
  server.set_metrics(metrics);
  for (const SloObjective& slo : slos) server.add_slo(slo);

  const LoadGenerator generator(
      {{.name = "mobile", .model = "vision", .rate = 120e6, .requests = 24},
       {.name = "embedded", .model = "keyword", .rate = 500e6, .requests = 36}},
      7);
  const BatchPolicy policy{.max_batch = 8, .max_wait = 25e-9,
                           .recalibration_period = 60e-9};
  return server.run(generator.generate(registry), policy);
}

/// Asserts the conservation contract on `report`, bitwise.
void expect_conserved(const ServeReport& report) {
  std::size_t requests = 0;
  std::size_t batches = 0;
  std::size_t passes = 0;
  std::size_t warm = 0;
  std::size_t recals = 0;
  double service = 0.0;
  double busy = 0.0;
  double energy = 0.0;
  double recal_time = 0.0;
  // Same order the server derived the totals in (tenant_costs is sorted),
  // so these sums must be bit-identical, not merely close.
  for (const TenantCost& cost : report.tenant_costs) {
    requests += cost.requests;
    batches += cost.batches;
    passes += cost.passes;
    warm += cost.warm_passes;
    recals += cost.recalibrations;
    service += cost.service_seconds;
    busy += cost.busy_seconds;
    energy += cost.energy_joules;
    recal_time += cost.recalibration_seconds;
  }
  EXPECT_EQ(requests, report.completed);
  EXPECT_GE(batches, report.dispatched_batches);  // shared batches count per tenant
  EXPECT_EQ(passes, report.passes);
  EXPECT_EQ(warm, report.warm_passes);
  EXPECT_EQ(recals, report.recalibrations);
  EXPECT_EQ(service, report.service_time);  // bit-exact, no tolerance
  EXPECT_EQ(busy, report.busy);
  EXPECT_EQ(energy, report.energy);
  EXPECT_EQ(recal_time, report.recalibration_time);
}

TEST(Attribution, ConservesFleetTotalsBitExactly) {
  const ServeReport report = golden_run(0);
  ASSERT_FALSE(report.tenant_costs.empty());
  expect_conserved(report);

  // Both tenants billed, plus the fleet row for recalibration downtime.
  ASSERT_NE(report.tenant_cost("mobile"), nullptr);
  ASSERT_NE(report.tenant_cost("embedded"), nullptr);
  ASSERT_NE(report.tenant_cost(TenantCost::kFleetTenant), nullptr);
  EXPECT_EQ(report.tenant_cost("unknown"), nullptr);

  const TenantCost& fleet = *report.tenant_cost(TenantCost::kFleetTenant);
  EXPECT_EQ(fleet.requests, 0u);
  EXPECT_GE(fleet.recalibrations, 1u);
  EXPECT_EQ(fleet.recalibrations, report.recalibrations);
  EXPECT_EQ(fleet.recalibration_seconds, report.recalibration_time);
  EXPECT_GT(report.recalibration_time, 0.0);

  // Attributed quantities are real costs, not zeros.
  const TenantCost& mobile = *report.tenant_cost("mobile");
  EXPECT_EQ(mobile.requests, 24u);
  EXPECT_GT(mobile.passes, 0u);
  EXPECT_GT(mobile.busy_seconds, 0.0);
  EXPECT_GT(mobile.energy_joules, 0.0);
  EXPECT_GT(mobile.service_seconds, 0.0);
}

TEST(Attribution, IdenticalAcrossHostThreadCounts) {
  const ServeReport r1 = golden_run(1);
  const ServeReport r2 = golden_run(2);
  const ServeReport r8 = golden_run(8);
  for (const ServeReport* other : {&r2, &r8}) {
    EXPECT_EQ(r1.makespan, other->makespan);
    EXPECT_EQ(r1.energy, other->energy);
    EXPECT_EQ(r1.busy, other->busy);
    EXPECT_EQ(r1.service_time, other->service_time);
    ASSERT_EQ(r1.tenant_costs.size(), other->tenant_costs.size());
    for (std::size_t i = 0; i < r1.tenant_costs.size(); ++i) {
      const TenantCost& a = r1.tenant_costs[i];
      const TenantCost& b = other->tenant_costs[i];
      EXPECT_EQ(a.tenant, b.tenant);
      EXPECT_EQ(a.requests, b.requests);
      EXPECT_EQ(a.passes, b.passes);
      EXPECT_EQ(a.warm_passes, b.warm_passes);
      EXPECT_EQ(a.service_seconds, b.service_seconds);  // bitwise
      EXPECT_EQ(a.busy_seconds, b.busy_seconds);
      EXPECT_EQ(a.energy_joules, b.energy_joules);
      EXPECT_EQ(a.recalibration_seconds, b.recalibration_seconds);
    }
    expect_conserved(*other);
  }
}

TEST(Attribution, SingleTenantTakesEveryCostBitwise) {
  // With one tenant, every split fraction is exactly 1.0 — the tenant row
  // must carry the whole fleet totals bitwise, not approximately.
  runtime::Accelerator accelerator({.cores = 2});
  ModelRegistry registry(accelerator);
  Rng rng(5);
  registry.add("m", nn::Mlp(16, 8, 4, rng));
  Server server(registry);
  const LoadGenerator generator(
      {{.name = "only", .model = "m", .rate = 200e6, .requests = 12}}, 11);
  const ServeReport report =
      server.run(generator.generate(registry), {.max_batch = 4,
                                                .max_wait = 20e-9});
  ASSERT_EQ(report.tenant_costs.size(), 1u);
  const TenantCost& only = report.tenant_costs.front();
  EXPECT_EQ(only.tenant, "only");
  EXPECT_EQ(only.requests, report.completed);
  EXPECT_EQ(only.passes, report.passes);
  EXPECT_EQ(only.warm_passes, report.warm_passes);
  EXPECT_EQ(only.busy_seconds, report.busy);
  EXPECT_EQ(only.energy_joules, report.energy);
  EXPECT_EQ(only.service_seconds, report.service_time);
  EXPECT_GT(report.energy, 0.0);
}

TEST(Attribution, MixedTenantBatchSplitsIntegersExactly) {
  // Two tenants of the same model arriving together share batches; the
  // integer quantities must split with no loss (largest remainder).
  runtime::Accelerator accelerator({.cores = 2});
  ModelRegistry registry(accelerator);
  Rng rng(5);
  registry.add("m", nn::Mlp(16, 8, 4, rng));
  Server server(registry);

  std::vector<Request> requests;
  for (std::size_t i = 0; i < 9; ++i) {
    Request request;
    request.id = i;
    request.tenant = (i % 3 == 0) ? "a" : "b";  // 3 of "a", 6 of "b"
    request.model = "m";
    request.arrival = 0.0;
    request.input.assign(16, 0.5);
    requests.push_back(std::move(request));
  }
  const ServeReport report =
      server.run(requests, {.max_batch = 9, .max_wait = 10e-9});
  EXPECT_EQ(report.dispatched_batches, 1u);
  ASSERT_EQ(report.tenant_costs.size(), 2u);
  const TenantCost& a = *report.tenant_cost("a");
  const TenantCost& b = *report.tenant_cost("b");
  EXPECT_EQ(a.requests, 3u);
  EXPECT_EQ(b.requests, 6u);
  EXPECT_EQ(a.passes + b.passes, report.passes);
  EXPECT_EQ(a.warm_passes + b.warm_passes, report.warm_passes);
  // Proportional: b carries twice a's share of an integer divisible by 3,
  // or within one unit otherwise (largest remainder).
  EXPECT_GE(b.passes, a.passes);
  expect_conserved(report);
  // Both tenants rode the same single batch.
  EXPECT_EQ(a.batches, 1u);
  EXPECT_EQ(b.batches, 1u);
}

TEST(Attribution, TenantMetricsFamiliesMatchCostRows) {
  telemetry::MetricsRegistry metrics;
  const ServeReport report = golden_run(0, &metrics);
  for (const TenantCost& cost : report.tenant_costs) {
    if (cost.tenant == TenantCost::kFleetTenant) continue;
    const std::string& model =
        cost.tenant == "mobile" ? "vision" : "keyword";
    const telemetry::LabelSet labels = {{"model", model},
                                        {"tenant", cost.tenant}};
    ASSERT_TRUE(metrics.contains("serve_tenant_requests_total", labels))
        << cost.tenant;
    EXPECT_EQ(metrics.counter("serve_tenant_requests_total", labels).value(),
              static_cast<double>(cost.requests));
    EXPECT_EQ(metrics.counter("serve_tenant_passes_total", labels).value(),
              static_cast<double>(cost.passes));
    EXPECT_EQ(
        metrics.counter("serve_tenant_energy_joules_total", labels).value(),
        cost.energy_joules);
    EXPECT_EQ(
        metrics.counter("serve_tenant_busy_seconds_total", labels).value(),
        cost.busy_seconds);
  }
  // The per-core dimension: every core's attributed busy time is published
  // and sums to the fleet total (same addition order as the schedule).
  ASSERT_TRUE(metrics.contains("fleet_core_busy_seconds_total"));
  EXPECT_EQ(metrics.label_sets("fleet_core_busy_seconds_total").size(), 4u);
}

// --- token-serving attribution ----------------------------------------------

/// Multi-tenant transformer scenario under continuous batching with a KV
/// budget tight enough to force preemptions — every token-serving cost
/// family (tokens, passes, kv_row_seconds, evictions, preemptions) lands
/// in the attribution.
TokenServeReport token_golden_run(std::size_t threads) {
  runtime::AcceleratorConfig config;
  config.cores = 4;
  config.threads = threads;
  config.variation.seed = 7;
  runtime::Accelerator accelerator(config);
  ModelRegistry registry(accelerator);

  nn::TransformerConfig tf_config;
  tf_config.vocab = 16;
  tf_config.d_model = 8;
  tf_config.heads = 2;
  tf_config.layers = 2;
  tf_config.d_ff = 12;
  tf_config.max_seq = 24;
  Rng rng(71);
  registry.add_transformer("tf", nn::TransformerModel::random(tf_config, rng));

  // Near-simultaneous arrivals (decode steps are ns-scale) so batches
  // actually form and tenants share steps.
  std::vector<TokenRequest> requests;
  Rng load(72);
  const std::vector<std::string> tenants = {"acme",    "acme",   "globex",
                                            "initech", "globex", "acme"};
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    TokenRequest request;
    request.id = i;
    request.tenant = tenants[i];
    request.model = "tf";
    request.arrival = static_cast<double>(i) * 1e-9;
    const std::size_t prompt_len = 1 + load.below(4);
    for (std::size_t t = 0; t < prompt_len; ++t) {
      request.prompt.push_back(load.below(tf_config.vocab));
    }
    request.max_new = 3 + load.below(6);
    requests.push_back(std::move(request));
  }

  TokenServer server(registry);
  TokenPolicy policy;
  policy.schedule = TokenPolicy::Schedule::kContinuous;
  policy.max_batch = 8;
  policy.kv_budget_rows = 8 * tf_config.layers;  // tight: forces preemption
  return server.run(requests, policy);
}

/// Asserts the token-serving conservation contract on `report`, bitwise.
void expect_token_conserved(const TokenServeReport& report) {
  std::size_t requests = 0;
  std::size_t tokens = 0;
  std::size_t passes = 0;
  std::size_t warm = 0;
  std::size_t evicted = 0;
  std::size_t preemptions = 0;
  double busy = 0.0;
  double energy = 0.0;
  double kv_row_seconds = 0.0;
  // Same sorted-tenant order the server derived the totals in, so the
  // sums must be bit-identical, not merely close.
  for (const TenantCost& cost : report.tenant_costs) {
    requests += cost.requests;
    tokens += cost.tokens;
    passes += cost.passes;
    warm += cost.warm_passes;
    evicted += cost.kv_evicted_rows;
    preemptions += cost.preemptions;
    busy += cost.busy_seconds;
    energy += cost.energy_joules;
    kv_row_seconds += cost.kv_row_seconds;
  }
  EXPECT_EQ(requests, report.completed);
  EXPECT_EQ(tokens, report.tokens);
  EXPECT_EQ(passes, report.passes);
  EXPECT_EQ(warm, report.warm_passes);
  EXPECT_EQ(evicted, report.kv_evicted_rows);
  EXPECT_EQ(preemptions, report.preemptions);
  EXPECT_EQ(busy, report.busy);      // bit-exact, no tolerance
  EXPECT_EQ(energy, report.energy);
  EXPECT_EQ(kv_row_seconds, report.kv_row_seconds);
}

TEST(TokenAttribution, ConservesTokenServingTotalsBitExactly) {
  const TokenServeReport report = token_golden_run(0);
  ASSERT_EQ(report.tenant_costs.size(), 3u);
  expect_token_conserved(report);

  // The scenario exercised every cost family, not just the easy ones.
  EXPECT_GT(report.tokens, 0u);
  EXPECT_GT(report.kv_row_seconds, 0.0);
  EXPECT_GT(report.preemptions, 0u);
  EXPECT_GT(report.kv_evicted_rows, 0u);
  EXPECT_GT(report.energy, 0.0);

  // Every tenant that sent requests was billed real token costs.
  for (const char* tenant : {"acme", "globex", "initech"}) {
    const TenantCost* cost = report.tenant_cost(tenant);
    ASSERT_NE(cost, nullptr) << tenant;
    EXPECT_GT(cost->tokens, 0u) << tenant;
    EXPECT_GT(cost->kv_row_seconds, 0.0) << tenant;
    EXPECT_GT(cost->energy_joules, 0.0) << tenant;
  }
  EXPECT_EQ(report.tenant_cost("unknown"), nullptr);
}

TEST(TokenAttribution, TenantRowsIdenticalAcrossHostThreadCounts) {
  const TokenServeReport r1 = token_golden_run(1);
  const TokenServeReport r2 = token_golden_run(2);
  const TokenServeReport r8 = token_golden_run(8);
  for (const TokenServeReport* other : {&r2, &r8}) {
    EXPECT_EQ(r1.makespan, other->makespan);
    EXPECT_EQ(r1.energy, other->energy);
    EXPECT_EQ(r1.kv_row_seconds, other->kv_row_seconds);
    ASSERT_EQ(r1.tenant_costs.size(), other->tenant_costs.size());
    for (std::size_t i = 0; i < r1.tenant_costs.size(); ++i) {
      const TenantCost& a = r1.tenant_costs[i];
      const TenantCost& b = other->tenant_costs[i];
      EXPECT_EQ(a.tenant, b.tenant);
      EXPECT_EQ(a.requests, b.requests);
      EXPECT_EQ(a.tokens, b.tokens);
      EXPECT_EQ(a.passes, b.passes);
      EXPECT_EQ(a.warm_passes, b.warm_passes);
      EXPECT_EQ(a.kv_evicted_rows, b.kv_evicted_rows);
      EXPECT_EQ(a.preemptions, b.preemptions);
      EXPECT_EQ(a.busy_seconds, b.busy_seconds);  // bitwise
      EXPECT_EQ(a.energy_joules, b.energy_joules);
      EXPECT_EQ(a.kv_row_seconds, b.kv_row_seconds);
    }
    expect_token_conserved(*other);
  }
}

TEST(TokenAttribution, SplitExactConservesAndBreaksTiesByOrder) {
  // Largest-remainder apportionment: exact sum, at-most-one-unit skew.
  const TenantShares shares = {{"a", 1}, {"b", 1}, {"c", 2}};
  const auto split = split_exact(10, shares, 4);
  EXPECT_EQ(split.at("a") + split.at("b") + split.at("c"), 10u);
  EXPECT_EQ(split.at("c"), 5u);  // exact half
  // 2.5 each remaining: equal remainders, first-in-map-order wins the
  // leftover unit.
  EXPECT_EQ(split.at("a"), 3u);
  EXPECT_EQ(split.at("b"), 2u);

  // Divisible case: no remainder anywhere.
  const auto even = split_exact(8, shares, 4);
  EXPECT_EQ(even.at("a"), 2u);
  EXPECT_EQ(even.at("b"), 2u);
  EXPECT_EQ(even.at("c"), 4u);

  // Zero total splits to all zeros; zero-weight tenants get nothing.
  const auto zero = split_exact(0, shares, 4);
  EXPECT_EQ(zero.at("a") + zero.at("b") + zero.at("c"), 0u);
  const auto skewed = split_exact(7, {{"x", 0}, {"y", 3}}, 3);
  EXPECT_EQ(skewed.at("x"), 0u);
  EXPECT_EQ(skewed.at("y"), 7u);

  EXPECT_THROW(split_exact(1, shares, 0), std::invalid_argument);
}

// --- SLO monitors -----------------------------------------------------------

TEST(Slo, LatencyBurnRatesAndRisingEdgeAlert) {
  SloObjective objective;
  objective.name = "lat";
  objective.kind = SloObjective::Kind::kLatency;
  objective.latency_target = 1.0;
  objective.objective = 0.9;  // error budget 0.1
  objective.short_window = 10.0;
  objective.long_window = 100.0;
  objective.burn_threshold = 2.0;
  SloMonitor monitor(objective);

  // 10 good completions: zero burn.
  for (int i = 0; i < 10; ++i) {
    monitor.observe(static_cast<double>(i) * 0.5, "t", 0.5, false, nullptr,
                    nullptr);
  }
  EXPECT_EQ(monitor.short_burn(), 0.0);
  EXPECT_EQ(monitor.long_burn(), 0.0);
  EXPECT_FALSE(monitor.breaching());
  EXPECT_TRUE(monitor.alerts().empty());

  // Push bad completions until both windows burn past 2x budget.
  for (int i = 0; i < 10; ++i) {
    monitor.observe(5.0 + static_cast<double>(i) * 0.1, "t", 3.0, false,
                    nullptr, nullptr);
  }
  // 10 bad of 20 observed: bad fraction 0.5, burn 0.5 / 0.1 = 5 >= 2.
  EXPECT_TRUE(monitor.breaching());
  ASSERT_EQ(monitor.alerts().size(), 1u);  // rising edge fired exactly once
  EXPECT_GT(monitor.short_burn(), 2.0);
  EXPECT_EQ(monitor.observed(), 20u);
  EXPECT_EQ(monitor.bad(), 10u);

  monitor.reset();
  EXPECT_EQ(monitor.short_burn(), 0.0);
  EXPECT_FALSE(monitor.breaching());
  EXPECT_TRUE(monitor.alerts().empty());
  EXPECT_EQ(monitor.observed(), 0u);
}

TEST(Slo, WindowsEvictOldCompletions) {
  SloObjective objective;
  objective.name = "w";
  objective.latency_target = 1.0;
  objective.objective = 0.5;  // budget 0.5 -> burn = 2 * bad_fraction
  objective.short_window = 1.0;
  objective.long_window = 10.0;
  SloMonitor monitor(objective);

  monitor.observe(0.0, "t", 2.0, false, nullptr, nullptr);  // bad
  EXPECT_EQ(monitor.short_burn(), 2.0);
  // 5 s later the bad completion left the 1 s window but not the 10 s one.
  monitor.observe(5.0, "t", 0.5, false, nullptr, nullptr);
  EXPECT_EQ(monitor.short_burn(), 0.0);
  EXPECT_EQ(monitor.long_burn(), 1.0);  // 1 bad of 2 -> 0.5 / 0.5
}

TEST(Slo, TenantFilterAndErrorRateKind) {
  SloObjective objective;
  objective.name = "acc";
  objective.tenant = "alice";
  objective.kind = SloObjective::Kind::kErrorRate;
  objective.objective = 0.5;
  objective.short_window = 10.0;
  objective.long_window = 10.0;
  SloMonitor monitor(objective);

  monitor.observe(0.0, "bob", 0.0, true, nullptr, nullptr);  // filtered out
  EXPECT_EQ(monitor.observed(), 0u);
  monitor.observe(1.0, "alice", 0.0, true, nullptr, nullptr);  // error
  monitor.observe(2.0, "alice", 0.0, false, nullptr, nullptr);
  EXPECT_EQ(monitor.observed(), 2u);
  EXPECT_EQ(monitor.bad(), 1u);
  EXPECT_EQ(monitor.short_burn(), 1.0);  // 0.5 bad fraction / 0.5 budget
}

TEST(Slo, ServerRunFeedsMonitorsAndEmitsTelemetry) {
  telemetry::MetricsRegistry metrics;
  SloObjective tight;
  tight.name = "tight-latency";
  tight.kind = SloObjective::Kind::kLatency;
  tight.latency_target = 1e-12;  // everything is bad: guaranteed alert
  tight.objective = 0.99;
  tight.short_window = 50e-9;
  tight.long_window = 200e-9;
  tight.burn_threshold = 1.0;
  const ServeReport report = golden_run(0, &metrics, {tight});

  ASSERT_EQ(report.slos.size(), 1u);
  const SloSummary& summary = report.slos.front();
  EXPECT_EQ(summary.name, "tight-latency");
  EXPECT_EQ(summary.observed, report.completed);
  EXPECT_EQ(summary.bad, report.completed);
  EXPECT_GE(summary.alerts, 1u);
  EXPECT_GT(summary.short_burn, 1.0);

  // Burn gauges and the alert counter landed in the registry, labeled.
  const telemetry::LabelSet short_labels = {{"slo", "tight-latency"},
                                            {"window", "short"}};
  ASSERT_TRUE(metrics.contains("slo_burn_rate", short_labels));
  EXPECT_EQ(metrics.gauge("slo_burn_rate", short_labels).value(),
            summary.short_burn);
  const telemetry::LabelSet alert_labels = {{"slo", "tight-latency"}};
  ASSERT_TRUE(metrics.contains("slo_alerts_total", alert_labels));
  EXPECT_EQ(metrics.counter("slo_alerts_total", alert_labels).value(),
            static_cast<double>(summary.alerts));
}

TEST(Slo, AlertEmitsTraceInstantEvent) {
  telemetry::Tracer tracer;
  runtime::Accelerator accelerator({.cores = 2});
  ModelRegistry registry(accelerator);
  Rng rng(5);
  registry.add("m", nn::Mlp(16, 8, 4, rng));
  Server server(registry);
  server.set_tracer(&tracer);
  SloObjective tight;
  tight.name = "t";
  tight.latency_target = 1e-12;
  tight.objective = 0.9;
  tight.short_window = 1.0;
  tight.long_window = 1.0;
  server.add_slo(tight);
  const LoadGenerator generator(
      {{.name = "only", .model = "m", .rate = 200e6, .requests = 8}}, 11);
  server.run(generator.generate(registry), {.max_batch = 4,
                                            .max_wait = 20e-9});
  bool saw_alert = false;
  for (const telemetry::TraceEvent& event : tracer.events()) {
    if (event.name == "slo_alert") saw_alert = true;
  }
  EXPECT_TRUE(saw_alert);
}

TEST(Slo, ObjectiveValidation) {
  SloObjective bad;
  bad.name = "";
  EXPECT_THROW(SloMonitor{bad}, std::invalid_argument);
  bad.name = "x";
  bad.objective = 1.5;
  EXPECT_THROW(SloMonitor{bad}, std::invalid_argument);
  bad.objective = 0.9;
  bad.short_window = 0.0;
  EXPECT_THROW(SloMonitor{bad}, std::invalid_argument);
  bad.short_window = 2.0;
  bad.long_window = 1.0;  // shorter than short window
  EXPECT_THROW(SloMonitor{bad}, std::invalid_argument);
}

TEST(Slo, DuplicateNamesRejectedByServer) {
  runtime::Accelerator accelerator({.cores = 2});
  ModelRegistry registry(accelerator);
  Server server(registry);
  SloObjective objective;
  objective.name = "dup";
  objective.latency_target = 1.0;
  objective.short_window = 1.0;
  objective.long_window = 1.0;
  server.add_slo(objective);
  EXPECT_THROW(server.add_slo(objective), std::invalid_argument);
  server.clear_slos();
  server.add_slo(objective);  // fine after clearing
  EXPECT_EQ(server.slos().size(), 1u);
}

}  // namespace
