#include <gtest/gtest.h>

#include <cmath>

#include "nn/backend.hpp"
#include "nn/dataset.hpp"
#include "nn/layers.hpp"
#include "nn/mlp.hpp"
#include "nn/quant.hpp"

namespace {

using namespace ptc;
using namespace ptc::nn;

TEST(Quantizer, RoundTripWithinHalfLsb) {
  const UnsignedQuantizer q(3);
  EXPECT_EQ(q.levels(), 8u);
  for (double x = 0.0; x <= 1.0; x += 0.03) {
    const double back = q.dequantize(q.quantize(x));
    EXPECT_LE(std::abs(back - x), q.max_error() + 1e-12);
  }
  EXPECT_EQ(q.quantize(0.0), 0u);
  EXPECT_EQ(q.quantize(1.0), 7u);
  EXPECT_THROW(q.quantize(1.5), std::invalid_argument);
}

TEST(SignedMapping, RoundTrip) {
  Matrix w{{-2.0, 1.0}, {0.5, 2.0}};
  const auto mapping = signed_mapping_for(w);
  EXPECT_DOUBLE_EQ(mapping.scale, 2.0);
  for (double v : {-2.0, -0.3, 0.0, 1.7, 2.0}) {
    EXPECT_NEAR(mapping.from_unit(mapping.to_unit(v)), v, 1e-12);
  }
  const Matrix unit = to_unit_matrix(w, mapping);
  EXPECT_DOUBLE_EQ(unit(0, 0), 0.0);   // -scale -> 0
  EXPECT_DOUBLE_EQ(unit(1, 1), 1.0);   // +scale -> 1
  EXPECT_DOUBLE_EQ(unit(0, 1), 0.75);
}

TEST(Quant, NormalizeActivations) {
  Matrix x{{0.0, 2.0}, {1.0, 4.0}};
  const double scale = normalize_activations(x);
  EXPECT_DOUBLE_EQ(scale, 4.0);
  EXPECT_DOUBLE_EQ(x(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(x(0, 1), 0.5);
  Matrix negative{{-1.0}};
  EXPECT_THROW(normalize_activations(negative), std::invalid_argument);
}

TEST(Layers, DenseForwardWithBias) {
  FloatBackend backend;
  DenseLayer layer(2, 2);
  layer.w = Matrix{{1.0, 0.0}, {0.0, 2.0}};
  layer.b = {0.5, -0.5};
  const Matrix y = layer.forward(backend, Matrix{{1.0, 1.0}});
  EXPECT_DOUBLE_EQ(y(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(y(0, 1), 1.5);
}

TEST(Layers, ReluSoftmaxArgmax) {
  const Matrix r = relu(Matrix{{-1.0, 2.0, 0.0}});
  EXPECT_DOUBLE_EQ(r(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r(0, 1), 2.0);

  const Matrix p = softmax(Matrix{{0.0, 0.0}, {100.0, 0.0}});
  EXPECT_NEAR(p(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(p(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(p(0, 0) + p(0, 1), 1.0, 1e-12);

  const auto am = argmax_rows(Matrix{{1.0, 3.0, 2.0}, {9.0, 0.0, 1.0}});
  EXPECT_EQ(am[0], 1u);
  EXPECT_EQ(am[1], 0u);
}

TEST(Layers, Im2colShapeAndContent) {
  Matrix img(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) img(i, j) = i * 4.0 + j;
  const Matrix patches = im2col(img, 3);
  EXPECT_EQ(patches.rows(), 4u);  // 2x2 output positions
  EXPECT_EQ(patches.cols(), 9u);
  EXPECT_DOUBLE_EQ(patches(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(patches(0, 8), 10.0);   // img(2,2)
  EXPECT_DOUBLE_EQ(patches(3, 0), 5.0);    // patch at (1,1) starts at img(1,1)
}

TEST(Layers, ConvMatchesDirectComputation) {
  FloatBackend backend;
  Matrix img(5, 5, 0.0);
  img(2, 2) = 1.0;  // impulse
  Matrix kernel{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const Matrix out = conv2d(backend, img, kernel);
  EXPECT_EQ(out.rows(), 3u);
  // Correlation of an impulse: out(i, j) = kernel(2 - i, 2 - j).
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(out(2 - i, 2 - j), kernel(i, j));
}

TEST(Dataset, DeterministicGivenSeed) {
  Rng a(5), b(5);
  const auto d1 = make_dataset(50, a);
  const auto d2 = make_dataset(50, b);
  EXPECT_EQ(d1.labels, d2.labels);
  EXPECT_LT(d1.inputs.max_abs_diff(d2.inputs), 1e-15);
}

TEST(Dataset, ShapesAndRanges) {
  Rng rng(9);
  const auto data = make_dataset(100, rng, 0.2);
  EXPECT_EQ(data.size(), 100u);
  EXPECT_EQ(data.inputs.rows(), 100u);
  EXPECT_EQ(data.inputs.cols(), glyph_pixels);
  for (double v : data.inputs.data()) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
  for (auto label : data.labels) ASSERT_LT(label, glyph_classes);
}

TEST(Dataset, GlyphsAreDistinct) {
  for (std::size_t a = 0; a < glyph_classes; ++a) {
    for (std::size_t b = a + 1; b < glyph_classes; ++b) {
      EXPECT_GT(glyph(a).max_abs_diff(glyph(b)), 0.5)
          << "glyphs " << a << " and " << b << " are identical";
    }
  }
}

TEST(Mlp, TrainsToHighAccuracyInFloat) {
  Rng rng(13);
  const auto train = make_dataset(400, rng, 0.1);
  const auto test = make_dataset(100, rng, 0.1);
  Mlp mlp(glyph_pixels, 24, glyph_classes, rng);
  FloatBackend backend;
  for (int epoch = 0; epoch < 30; ++epoch) {
    mlp.train_epoch(train, 0.1, 16, rng);
  }
  EXPECT_GT(mlp.accuracy(backend, test), 0.95);
}

TEST(Mlp, LossDecreasesDuringTraining) {
  Rng rng(17);
  const auto train = make_dataset(200, rng, 0.1);
  Mlp mlp(glyph_pixels, 16, glyph_classes, rng);
  const double first = mlp.train_epoch(train, 0.1, 16, rng);
  double last = first;
  for (int epoch = 0; epoch < 25; ++epoch) {
    last = mlp.train_epoch(train, 0.1, 16, rng);
  }
  EXPECT_LT(last, 0.5 * first);
}

TEST(PhotonicBackend, MatchesFloatOnSmallMatmul) {
  core::TensorCore tc;
  PhotonicBackendOptions options;
  options.quantize_output = false;  // isolate the analog path
  PhotonicBackend photonic(tc, options);
  FloatBackend reference;

  Rng rng(21);
  Matrix x(2, 16);
  for (double& v : x.data()) v = rng.uniform();
  Matrix w(16, 16);
  for (double& v : w.data()) v = rng.uniform(-1.0, 1.0);

  const Matrix expected = reference.matmul(x, w);
  const Matrix actual = photonic.matmul(x, w);
  ASSERT_EQ(actual.rows(), 2u);
  ASSERT_EQ(actual.cols(), 16u);
  // 3-bit weights + analog readout: error dominated by weight quantization.
  double worst = expected.max_abs_diff(actual);
  EXPECT_LT(worst, 1.3);  // |x|<=1, 16 terms, ~0.07 scale quant error each
  EXPECT_GT(worst, 0.0);
}

TEST(PhotonicBackend, HandlesNonTileShapesByPadding) {
  core::TensorCore tc;
  PhotonicBackendOptions options;
  options.quantize_output = false;
  PhotonicBackend photonic(tc, options);
  FloatBackend reference;

  Rng rng(23);
  Matrix x(1, 9);
  for (double& v : x.data()) v = rng.uniform();
  Matrix w(9, 5);
  for (double& v : w.data()) v = rng.uniform(-0.5, 0.5);

  const Matrix expected = reference.matmul(x, w);
  const Matrix actual = photonic.matmul(x, w);
  ASSERT_EQ(actual.cols(), 5u);
  EXPECT_LT(expected.max_abs_diff(actual), 0.6);
}

TEST(PhotonicBackend, CountsTileLoads) {
  core::TensorCore tc;
  PhotonicBackend photonic(tc);
  Matrix x(1, 32, 0.5);
  Matrix w(32, 32, 0.1);
  photonic.matmul(x, w);
  // 2 k-tiles x 2 m-tiles.
  EXPECT_EQ(photonic.tile_loads(), 4u);
  EXPECT_NEAR(photonic.reload_time() * 1e9, 4 * 2.4, 1e-6);
}

TEST(PhotonicBackend, QuantizedOutputStillCorrelates) {
  core::TensorCore tc;
  PhotonicBackend photonic(tc);  // with 3-bit ADC quantization
  FloatBackend reference;
  Rng rng(31);
  Matrix x(4, 16);
  for (double& v : x.data()) v = rng.uniform();
  Matrix w(16, 4);
  for (double& v : w.data()) v = rng.uniform(-1.0, 1.0);
  const Matrix expected = reference.matmul(x, w);
  const Matrix actual = photonic.matmul(x, w);
  // Coarse 8-level readout: require sign+trend agreement, not tightness.
  int agree = 0, total = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      ++total;
      if (std::abs(expected(i, j) - actual(i, j)) < 2.5) ++agree;
    }
  }
  EXPECT_GE(agree, total - 2);
}

}  // namespace
