#include <gtest/gtest.h>

#include <cmath>

#include "adc/flash_adc.hpp"
#include "adc/ideal_adc.hpp"
#include "adc/time_interleaved.hpp"

namespace {

using namespace ptc::adc;

TEST(IdealAdc, QuantizesAndReconstructs) {
  const IdealAdc adc(3, 4.0);
  EXPECT_DOUBLE_EQ(adc.lsb(), 0.5);
  EXPECT_EQ(adc.convert(0.0), 0u);
  EXPECT_EQ(adc.convert(0.49), 0u);
  EXPECT_EQ(adc.convert(0.51), 1u);
  EXPECT_EQ(adc.convert(3.99), 7u);
  EXPECT_EQ(adc.convert(10.0), 7u);   // clamps
  EXPECT_EQ(adc.convert(-1.0), 0u);
  EXPECT_NEAR(adc.reconstruct(3), 1.75, 1e-12);
  EXPECT_THROW(adc.reconstruct(8), std::invalid_argument);
}

TEST(FlashAdc, MatchesIdealQuantizer) {
  FlashAdc flash;
  const IdealAdc ideal(3, 4.0);
  for (double v = 0.01; v < 4.0; v += 0.037) {
    EXPECT_EQ(flash.convert(v), ideal.convert(v)) << "at " << v;
  }
}

TEST(FlashAdc, ThermometerCodeIsContiguous) {
  FlashAdc flash;
  flash.convert(2.1);
  const auto& thermo = flash.last_thermometer();
  ASSERT_EQ(thermo.size(), 7u);
  // All ones below the input level, all zeros above.
  bool seen_zero = false;
  for (bool bit : thermo) {
    if (!bit) seen_zero = true;
    EXPECT_FALSE(seen_zero && bit) << "bubble in thermometer code";
  }
}

TEST(FlashAdc, EveryComparatorFiresEveryConversion) {
  // The power problem the 1-hot eoADC avoids: 2^p - 1 activations/conv.
  FlashAdc flash;
  EXPECT_EQ(flash.activations_per_conversion(), 7u);
  FlashAdcConfig config;
  config.bits = 6;
  const FlashAdc big(config);
  EXPECT_EQ(big.activations_per_conversion(), 63u);
}

TEST(FlashAdc, PowerScalesExponentiallyWithBits) {
  FlashAdcConfig c3;
  c3.bits = 3;
  FlashAdcConfig c6 = c3;
  c6.bits = 6;
  const FlashAdc small(c3), big(c6);
  // 63 comparators vs 7: electrical power grows ~8x (bias-dominated).
  EXPECT_GT(big.electrical_power(), 5.0 * small.electrical_power());
}

TEST(FlashAdc, ComparatorOffsetsCanCauseBubbles) {
  FlashAdcConfig config;
  config.include_offsets = true;
  config.comparator.offset_sigma = 80e-3;  // deliberately terrible
  config.offset_seed = 11;
  FlashAdc flash(config);
  // With huge offsets, some code must deviate from ideal somewhere.
  const IdealAdc ideal(3, 4.0);
  int mismatches = 0;
  for (double v = 0.01; v < 4.0; v += 0.013) {
    if (flash.convert(v) != ideal.convert(v)) ++mismatches;
  }
  EXPECT_GT(mismatches, 0);
}

TEST(FlashAdc, EnergyPerConversion) {
  const FlashAdc flash;
  EXPECT_NEAR(flash.energy_per_conversion(),
              flash.electrical_power() / 8e9, 1e-18);
  EXPECT_GT(flash.energy_per_conversion(), 1e-12);  // pJ class
}

TEST(TimeInterleaved, AggregateRateScalesWithSlices) {
  TimeInterleavedConfig config;
  config.slices = 2;
  const TimeInterleavedEoAdc ti(config);
  EXPECT_DOUBLE_EQ(ti.sample_rate(), 16e9);  // 2 x 8 GS/s
  TimeInterleavedConfig quad = config;
  quad.slices = 4;
  EXPECT_DOUBLE_EQ(TimeInterleavedEoAdc(quad).sample_rate(), 32e9);
}

TEST(TimeInterleaved, RoundRobinSliceSelection) {
  TimeInterleavedConfig config;
  config.slices = 3;
  TimeInterleavedEoAdc ti(config);
  EXPECT_EQ(ti.next_slice(), 0u);
  ti.convert(1.0);
  EXPECT_EQ(ti.next_slice(), 1u);
  ti.convert(1.0);
  ti.convert(1.0);
  EXPECT_EQ(ti.next_slice(), 0u);
}

TEST(TimeInterleaved, MatchedSlicesAgreeOnCodes) {
  TimeInterleavedConfig config;
  config.slices = 4;
  TimeInterleavedEoAdc ti(config);
  for (double v : {0.3, 1.1, 2.6, 3.7}) {
    const unsigned first = ti.convert(v);
    for (int k = 1; k < 4; ++k) EXPECT_EQ(ti.convert(v), first);
  }
}

TEST(TimeInterleaved, EnergyPerConversionStaysFlat) {
  // Interleaving buys rate at proportional power: E/conv ~ constant.
  TimeInterleavedConfig one;
  one.slices = 1;
  TimeInterleavedConfig four;
  four.slices = 4;
  const double e1 = TimeInterleavedEoAdc(one).energy_per_conversion();
  const double e4 = TimeInterleavedEoAdc(four).energy_per_conversion();
  EXPECT_NEAR(e4 / e1, 1.0, 0.05);
}

TEST(TimeInterleaved, GainMismatchCausesCodeDisagreement) {
  TimeInterleavedConfig config;
  config.slices = 4;
  config.gain_mismatch_sigma = 0.05;  // 5% gain spread
  config.mismatch_seed = 3;
  TimeInterleavedEoAdc ti(config);
  // Near code edges, mismatched slices disagree — the classic interleaving
  // artifact (refs [41]-[43]).  Sweep finely so some samples land there.
  int disagreements = 0;
  for (double v = 0.3; v < 4.0; v += 0.07) {
    const unsigned first = ti.convert(v);
    for (int k = 1; k < 4; ++k) {
      if (ti.convert(v) != first) ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

}  // namespace
