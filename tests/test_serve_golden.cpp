// Golden end-to-end serve-trace regression: a pinned multi-tenant serving
// scenario whose full ServeReport — per-tenant tails, warm fraction,
// energy, batch trace shape — is compared against committed golden values.
//
// The serving stack's determinism contract makes this meaningful: identical
// (requests, policy, registry, fleet config) must reproduce the report bit
// for bit on any host, so any drift here is a behavior change, not noise.
// Scalars are compared at 1e-9 relative tolerance (immaterial last-ulp
// slack), counters exactly.
//
// Update workflow (see README "Testing"): when a deliberate serving-layer
// change moves these numbers, run this test — on failure it prints the
// complete `kGolden` initializer block with the observed values; review the
// diff, then paste the block over the one below.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "nn/transformer.hpp"
#include "runtime/accelerator.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/token_server.hpp"

namespace {

using namespace ptc;
using namespace ptc::serve;

struct GoldenValue {
  const char* name;
  double expected;
  bool exact;  ///< counters compare exactly; times/energies at 1e-9 rel
};

// Golden values for the scenario below, produced by this test's print-out.
constexpr GoldenValue kGolden[] = {
    {"requests", 48, true},
    {"batches", 14, true},
    {"passes", 68, true},
    {"warm_passes", 4, true},
    {"reference_matches", 6, true},
    {"recalibrations", 0, true},
    {"makespan", 5.2210802950884208e-07, false},
    {"energy", 2.9836358678260876e-08, false},
    {"busy", 1.7560000000000001e-07, false},
    {"warm_fraction", 0.058823529411764705, false},
    {"mean_batch", 3.4285714285714284, false},
    {"total_p50", 1.9109529749704404e-08, false},
    {"total_p95", 3.0800000000000011e-08, false},
    {"total_p99", 3.0800000000000011e-08, false},
    {"queue_wait_p99", 2.4999999999999999e-08, false},
    {"service_p99", 6.7999999999999997e-09, false},
    {"alpha_p50", 1.1520241744525871e-08, false},
    {"alpha_p95", 2.867554243755994e-08, false},
    {"alpha_p99", 3.0799999999999998e-08, false},
    {"beta_p50", 3.0049999999999928e-08, false},
    {"beta_p95", 3.0549999999999992e-08, false},
    {"beta_p99", 3.0800000000000011e-08, false},
};

ServeReport run_scenario() {
  // 4-core variation-aware fleet (each die a distinct seeded device, so
  // the run scores accuracy against the float reference), one resident
  // model ("small", 2 tiles) and one streaming model ("wide", 6 tiles),
  // two Poisson tenants each pinned to one model.
  runtime::AcceleratorConfig config;
  config.cores = 4;
  config.variation.seed = 7;
  runtime::Accelerator accelerator(config);
  ModelRegistry registry(accelerator);
  Rng rng(2025);
  registry.add("small", nn::Mlp(16, 8, 4, rng));
  registry.add("wide", nn::Mlp(32, 24, 10, rng));
  Server server(registry);

  const LoadGenerator generator(
      {{.name = "alpha", .model = "small", .rate = 500e6, .requests = 28},
       {.name = "beta", .model = "wide", .rate = 40e6, .requests = 20}},
      4321);
  const BatchPolicy policy{.max_batch = 8, .max_wait = 25e-9};
  return server.run(generator.generate(registry), policy);
}

std::vector<double> actual_values(const ServeReport& report) {
  const LatencyStats alpha = report.tenant_total("alpha");
  const LatencyStats beta = report.tenant_total("beta");
  return {
      static_cast<double>(report.requests.size()),
      static_cast<double>(report.batches.size()),
      static_cast<double>(report.passes),
      static_cast<double>(report.warm_passes),
      static_cast<double>(report.reference_matches),
      static_cast<double>(report.recalibrations),
      report.makespan,
      report.energy,
      report.busy,
      report.warm_fraction(),
      report.mean_batch(),
      report.total.p50,
      report.total.p95,
      report.total.p99,
      report.queue_wait.p99,
      report.service.p99,
      alpha.p50,
      alpha.p95,
      alpha.p99,
      beta.p50,
      beta.p95,
      beta.p99,
  };
}

TEST(ServeGolden, MultiTenantTraceMatchesCommittedGoldenValues) {
  const ServeReport report = run_scenario();
  const std::vector<double> actual = actual_values(report);
  ASSERT_EQ(actual.size(), std::size(kGolden));

  bool mismatch = false;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const GoldenValue& golden = kGolden[i];
    const double scale = std::max(std::abs(golden.expected), 1e-300);
    const bool ok = golden.exact
                        ? actual[i] == golden.expected
                        : std::abs(actual[i] - golden.expected) <= 1e-9 * scale;
    if (!ok) {
      mismatch = true;
      ADD_FAILURE() << "golden mismatch: " << golden.name << "\n  expected "
                    << ::testing::PrintToString(golden.expected)
                    << "\n  actual   " << ::testing::PrintToString(actual[i])
                    << (golden.exact ? "  (exact)" : "  (rel tol 1e-9)");
    }
  }

  if (mismatch) {
    // Readable regeneration block: paste over kGolden after reviewing why
    // the trace moved.
    std::string block = "constexpr GoldenValue kGolden[] = {\n";
    for (std::size_t i = 0; i < actual.size(); ++i) {
      char line[160];
      if (kGolden[i].exact) {
        std::snprintf(line, sizeof(line), "    {\"%s\", %.0f, true},\n",
                      kGolden[i].name, actual[i]);
      } else {
        std::snprintf(line, sizeof(line), "    {\"%s\", %.17g, false},\n",
                      kGolden[i].name, actual[i]);
      }
      block += line;
    }
    block += "};";
    ADD_FAILURE() << "updated golden block (review the diff first):\n"
                  << block;
  }
}

// --- token-serving golden ---------------------------------------------------

// Golden values for the transformer scenario below, produced by this
// test's print-out (same paste-block update workflow as kGolden).
constexpr GoldenValue kTokenGolden[] = {
    {"requests", 6, true},
    {"steps", 42, true},
    {"tokens", 84, true},
    {"passes", 1218, true},
    {"warm_passes", 0, true},
    {"kv_peak_rows", 18, true},
    {"kv_evicted_rows", 80, true},
    {"preemptions", 20, true},
    {"makespan", 9.063999999999997e-07, false},
    {"energy", 5.4112305057391773e-07, false},
    {"busy", 3.2917000000000002e-06, false},
    {"kv_row_seconds", 1.15627e-05, false},
    {"warm_fraction", 0, false},
    {"tokens_per_second", 92674315.975286886, false},
    {"energy_per_token", 6.4419410782609252e-09, false},
    {"total_p99", 9.0139999999999975e-07, false},
    {"first_token_p99", 3.2140000000000001e-07, false},
};

TokenServeReport run_token_scenario() {
  // Same multi-tenant transformer scenario the attribution conservation
  // tests pin: a 4-core varied fleet, one registered transformer, six
  // near-simultaneous requests from three tenants under continuous
  // batching with a KV budget tight enough to force preemption.
  runtime::AcceleratorConfig config;
  config.cores = 4;
  config.variation.seed = 7;
  runtime::Accelerator accelerator(config);
  ModelRegistry registry(accelerator);
  nn::TransformerConfig tf_config;
  tf_config.vocab = 16;
  tf_config.d_model = 8;
  tf_config.heads = 2;
  tf_config.layers = 2;
  tf_config.d_ff = 12;
  tf_config.max_seq = 24;
  Rng rng(71);
  registry.add_transformer("tf",
                           nn::TransformerModel::random(tf_config, rng));

  std::vector<TokenRequest> requests;
  Rng load(72);
  const std::vector<std::string> tenants = {"acme",    "acme",   "globex",
                                            "initech", "globex", "acme"};
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    TokenRequest request;
    request.id = i;
    request.tenant = tenants[i];
    request.model = "tf";
    request.arrival = static_cast<double>(i) * 1e-9;
    const std::size_t prompt_len = 1 + load.below(4);
    for (std::size_t t = 0; t < prompt_len; ++t) {
      request.prompt.push_back(load.below(tf_config.vocab));
    }
    request.max_new = 3 + load.below(6);
    requests.push_back(std::move(request));
  }

  TokenServer server(registry);
  TokenPolicy policy;
  policy.schedule = TokenPolicy::Schedule::kContinuous;
  policy.max_batch = 8;
  policy.kv_budget_rows = 8 * tf_config.layers;
  return server.run(requests, policy);
}

std::vector<double> actual_token_values(const TokenServeReport& report) {
  return {
      static_cast<double>(report.completed),
      static_cast<double>(report.steps),
      static_cast<double>(report.tokens),
      static_cast<double>(report.passes),
      static_cast<double>(report.warm_passes),
      static_cast<double>(report.kv_peak_rows),
      static_cast<double>(report.kv_evicted_rows),
      static_cast<double>(report.preemptions),
      report.makespan,
      report.energy,
      report.busy,
      report.kv_row_seconds,
      report.warm_fraction(),
      report.tokens_per_second(),
      report.energy_per_token(),
      report.total.p99,
      report.first_token.p99,
  };
}

TEST(ServeGolden, TransformerTokenScenarioMatchesCommittedGoldenValues) {
  const TokenServeReport report = run_token_scenario();
  const std::vector<double> actual = actual_token_values(report);
  ASSERT_EQ(actual.size(), std::size(kTokenGolden));

  bool mismatch = false;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const GoldenValue& golden = kTokenGolden[i];
    const double scale = std::max(std::abs(golden.expected), 1e-300);
    const bool ok = golden.exact
                        ? actual[i] == golden.expected
                        : std::abs(actual[i] - golden.expected) <= 1e-9 * scale;
    if (!ok) {
      mismatch = true;
      ADD_FAILURE() << "token golden mismatch: " << golden.name
                    << "\n  expected "
                    << ::testing::PrintToString(golden.expected)
                    << "\n  actual   " << ::testing::PrintToString(actual[i])
                    << (golden.exact ? "  (exact)" : "  (rel tol 1e-9)");
    }
  }

  if (mismatch) {
    std::string block = "constexpr GoldenValue kTokenGolden[] = {\n";
    for (std::size_t i = 0; i < actual.size(); ++i) {
      char line[160];
      if (kTokenGolden[i].exact) {
        std::snprintf(line, sizeof(line), "    {\"%s\", %.0f, true},\n",
                      kTokenGolden[i].name, actual[i]);
      } else {
        std::snprintf(line, sizeof(line), "    {\"%s\", %.17g, false},\n",
                      kTokenGolden[i].name, actual[i]);
      }
      block += line;
    }
    block += "};";
    ADD_FAILURE() << "updated token golden block (review the diff first):\n"
                  << block;
  }
}

TEST(ServeGolden, TokenScenarioIsReproducibleWithinOneProcess) {
  const TokenServeReport a = run_token_scenario();
  const TokenServeReport b = run_token_scenario();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.total.p99, b.total.p99);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.kv_peak_rows, b.kv_peak_rows);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

TEST(ServeGolden, ScenarioIsReproducibleWithinOneProcess) {
  const ServeReport a = run_scenario();
  const ServeReport b = run_scenario();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.total.p99, b.total.p99);
  EXPECT_EQ(a.batches.size(), b.batches.size());
  EXPECT_EQ(a.reference_matches, b.reference_matches);
}

}  // namespace
