#include <gtest/gtest.h>

#include <stdexcept>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "common/units.hpp"

namespace {

using namespace ptc;
using namespace ptc::units;

TEST(Units, DbmToWattReferencePoints) {
  EXPECT_NEAR(dbm_to_watt(0.0), 1e-3, 1e-12);     // 0 dBm = 1 mW (write laser)
  EXPECT_NEAR(dbm_to_watt(-20.0), 10e-6, 1e-12);  // -20 dBm = 10 uW (bias)
  EXPECT_NEAR(dbm_to_watt(10.0), 10e-3, 1e-12);
  EXPECT_NEAR(dbm_to_watt(-30.0), 1e-6, 1e-15);
}

TEST(Units, WattToDbmRoundTrip) {
  for (double dbm = -40.0; dbm <= 20.0; dbm += 3.7) {
    EXPECT_NEAR(watt_to_dbm(dbm_to_watt(dbm)), dbm, 1e-9);
  }
}

TEST(Units, WattToDbmRejectsNonPositive) {
  EXPECT_THROW(watt_to_dbm(0.0), std::invalid_argument);
  EXPECT_THROW(watt_to_dbm(-1.0), std::invalid_argument);
}

TEST(Units, DbRatioRoundTrip) {
  EXPECT_NEAR(ratio_to_db(10.0), 10.0, 1e-12);
  EXPECT_NEAR(ratio_to_db(0.5), -3.0103, 1e-4);
  EXPECT_NEAR(db_to_ratio(-3.0), 0.501187, 1e-6);
  for (double db = -30.0; db < 30.0; db += 2.1) {
    EXPECT_NEAR(ratio_to_db(db_to_ratio(db)), db, 1e-9);
  }
}

TEST(Units, WavelengthFrequencyConversion) {
  // O-band 1310 nm <-> ~228.85 THz.
  const double f = wavelength_to_frequency(1310e-9);
  EXPECT_NEAR(f, 228.85e12, 0.05e12);
  EXPECT_NEAR(frequency_to_wavelength(f), 1310e-9, 1e-15);
}

TEST(Units, PhotonEnergyAt1310nm) {
  // E = h c / lambda ~ 0.946 eV at 1310 nm.
  const double e_joule = photon_energy(1310e-9);
  EXPECT_NEAR(e_joule / ptc::constants::q_e, 0.9464, 1e-3);
}

TEST(Units, SiFormatChoosesPrefixes) {
  EXPECT_EQ(si_format(2.32e-12, "J"), "2.32 pJ");
  EXPECT_EQ(si_format(4.096e12, "OPS"), "4.1 TOPS");
  EXPECT_EQ(si_format(0.0, "W"), "0 W");
  EXPECT_EQ(si_format(11e-3, "W"), "11 mW");
}

TEST(Expects, ThrowsWithMessage) {
  EXPECT_NO_THROW(expects(true, "fine"));
  EXPECT_NO_THROW(ensures(true, "fine"));
  EXPECT_THROW(expects(false, "bad input"), std::invalid_argument);
  EXPECT_THROW(ensures(false, "bad state"), std::logic_error);
  try {
    expects(false, "bad input");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bad input"), std::string::npos);
  }
}

TEST(Constants, PhysicalValues) {
  EXPECT_NEAR(ptc::constants::c0, 2.99792458e8, 1.0);
  EXPECT_NEAR(ptc::constants::v_thermal, 0.02585, 1e-4);
}

}  // namespace
