#include <gtest/gtest.h>

#include "core/performance.hpp"

namespace {

using namespace ptc::core;

TEST(PerformanceModel, PaperHeadlineNumbers) {
  const PerformanceModel model;
  EXPECT_NEAR(model.throughput_ops() / 1e12, 4.10, 0.01);   // 4.10 TOPS
  EXPECT_NEAR(model.tops_per_watt() / 1e12, 3.02, 0.03);    // 3.02 TOPS/W
  EXPECT_EQ(model.bitcell_count(), 768u);                   // 768 bitcells
  EXPECT_DOUBLE_EQ(model.sample_rate(), 8e9);               // ADC-limited
}

TEST(PerformanceModel, OpsAccounting) {
  const PerformanceModel model;
  // 16 rows x (16 multiplies + 16 additions).
  EXPECT_DOUBLE_EQ(model.ops_per_sample(), 512.0);
}

TEST(PerformanceModel, WeightReloadTime) {
  const PerformanceModel model;
  EXPECT_NEAR(model.weight_reload_time() * 1e9, 2.4, 1e-9);
}

TEST(PerformanceModel, PowerTableSumsToPower) {
  const PerformanceModel model;
  double sum = 0.0;
  for (const auto& [name, watts] : model.power_table()) {
    EXPECT_GT(watts, 0.0) << name;
    sum += watts;
  }
  EXPECT_NEAR(sum, model.power(), 1e-12);
  EXPECT_EQ(model.power_table().size(), 7u);
}

TEST(PerformanceModel, AdcPowerShareMatchesPaperAdc) {
  const PerformanceModel model;
  double adc_power = 0.0;
  for (const auto& [name, watts] : model.power_table()) {
    if (name.find("eoADC") != std::string::npos) adc_power += watts;
  }
  // 16 ADCs at 18.6 mW each.
  EXPECT_NEAR(adc_power * 1e3, 16 * 18.6, 2.0);
}

TEST(PerformanceModel, ReportRow) {
  const PerformanceModel model;
  const auto report = model.report();
  EXPECT_EQ(report.name, "This Work");
  EXPECT_NEAR(report.throughput_tops, 4.10, 0.01);
  EXPECT_NEAR(report.efficiency_tops_w, 3.02, 0.03);
  EXPECT_DOUBLE_EQ(report.weight_update_hz, 20e9);
}

TEST(PerformanceModel, ScalesWithGeometry) {
  TensorCoreConfig big;
  big.rows = 32;
  big.cols = 32;
  const PerformanceModel model(big);
  // 32 x 2 x 32 x 8e9 = 16.4 TOPS.
  EXPECT_NEAR(model.throughput_ops() / 1e12, 16.38, 0.05);
  EXPECT_EQ(model.bitcell_count(), 3072u);
}

TEST(PerformanceModel, PrecisionAffectsBitcellsNotThroughput) {
  TensorCoreConfig high_precision;
  high_precision.weight_bits = 5;
  const PerformanceModel model(high_precision);
  EXPECT_EQ(model.bitcell_count(), 1280u);
  EXPECT_NEAR(model.throughput_ops() / 1e12, 4.10, 0.01);
  // Reload takes longer: 16 x 5 bits at 20 GHz.
  EXPECT_NEAR(model.weight_reload_time() * 1e9, 4.0, 1e-9);
}

TEST(PerformanceModel, SlowAdcModeDropsThroughput) {
  TensorCoreConfig config;
  config.adc.use_amplifier_chain = false;
  const PerformanceModel model(config);
  // 416.7 MS/s instead of 8 GS/s: ~19x lower throughput.
  EXPECT_LT(model.throughput_ops() / 1e12, 0.25);
  EXPECT_GT(model.throughput_ops() / 1e12, 0.15);
}

}  // namespace
