// Parameterized property sweeps across the device operating space: these
// assert *invariants* (bounds, monotonicity, symmetry) rather than point
// values, complementing the calibration checks in the per-module suites.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/eoadc.hpp"
#include "core/psram_bitcell.hpp"
#include "core/tech.hpp"
#include "core/tensor_core.hpp"
#include "core/vector_macro.hpp"
#include "optics/microring.hpp"
#include "sim/montecarlo.hpp"

namespace {

using namespace ptc;
using namespace ptc::core;
using namespace ptc::optics;

// ---------------------------------------------------------------------------
// Microring invariants over (bias, temperature) grid.
// ---------------------------------------------------------------------------

class RingOperatingPoint
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RingOperatingPoint, TransmissionsAreValidProbabilities) {
  const auto [bias, dtemp] = GetParam();
  Microring ring(compute_ring_config(0, 0.0));
  ring.set_bias(bias);
  ring.set_temperature_offset(dtemp);
  for (double detune_nm = -5.0; detune_nm <= 5.0; detune_nm += 0.25) {
    const double lambda = 1310e-9 + detune_nm * 1e-9;
    const double thru = ring.thru_transmission(lambda);
    const double drop = ring.drop_transmission(lambda);
    ASSERT_GE(thru, 0.0);
    ASSERT_LE(thru, 1.0);
    ASSERT_GE(drop, 0.0);
    ASSERT_LE(drop, 1.0);
    ASSERT_LE(thru + drop, 1.0 + 1e-9);  // passivity
  }
}

TEST_P(RingOperatingPoint, ResonanceShiftIsMonotoneInBias) {
  const auto [bias, dtemp] = GetParam();
  Microring ring(compute_ring_config(0, 0.0));
  ring.set_temperature_offset(dtemp);
  ring.set_bias(bias);
  const double res_low = ring.resonance_near(1310e-9);
  ring.set_bias(bias + 0.2);
  const double res_high = ring.resonance_near(1310e-9);
  EXPECT_GT(res_high, res_low);  // red-shift with increasing bias
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RingOperatingPoint,
    ::testing::Combine(::testing::Values(-1.0, 0.0, 0.9, 1.8, 3.0),
                       ::testing::Values(-10.0, 0.0, 10.0)));

// ---------------------------------------------------------------------------
// eoADC invariants across the input range and bit widths.
// ---------------------------------------------------------------------------

class AdcBitWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdcBitWidths, RampIsMonotoneAndCoversAllCodes) {
  EoAdcConfig config;
  config.bits = GetParam();
  EoAdc adc(config);
  std::vector<bool> seen(adc.channel_count(), false);
  unsigned prev = 0;
  for (double v = 0.0; v <= 4.0; v += 4.0 / 4096.0) {
    const unsigned code = adc.code(v);
    ASSERT_GE(code, prev);
    prev = code;
    seen[code] = true;
  }
  for (std::size_t c = 0; c < seen.size(); ++c) {
    EXPECT_TRUE(seen[c]) << "code " << c << " never produced";
  }
}

TEST_P(AdcBitWidths, EnergyPerConversionScalesWithChannels) {
  EoAdcConfig config;
  config.bits = GetParam();
  const EoAdc adc(config);
  // Optical power scales with 2^p; check the ledgered totals follow.
  EXPECT_NEAR(adc.optical_power_delivered(),
              static_cast<double>(adc.channel_count()) * 218e-6, 1e-9);
  EXPECT_GT(adc.energy_per_conversion(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, AdcBitWidths, ::testing::Values(2, 3, 4));

// ---------------------------------------------------------------------------
// pSRAM Monte-Carlo robustness: node-capacitance and responsivity spread.
// ---------------------------------------------------------------------------

TEST(PsramMonteCarlo, WritesSucceedUnderDeviceSpread) {
  const auto summary = sim::run_monte_carlo(
      25, 99,
      [](Rng& rng) {
        PsramConfig config;
        config.node_capacitance = 5e-15 * (1.0 + rng.normal(0.0, 0.1));
        config.photodiode.responsivity = 1.0 + rng.normal(0.0, 0.05);
        PsramBitcell cell(config);
        cell.initialize(false);
        const auto w1 = cell.write(true);
        const auto w0 = cell.write(false);
        return (w1.success && w0.success) ? 1.0 : 0.0;
      },
      [](double ok) { return ok > 0.5; });
  EXPECT_DOUBLE_EQ(summary.yield, 1.0);
}

TEST(PsramMonteCarlo, WriteEnergySpreadIsTight) {
  const auto summary = sim::run_monte_carlo(
      25, 123,
      [](Rng& rng) {
        PsramConfig config;
        config.driver.load_capacitance = 85e-15 * (1.0 + rng.normal(0.0, 0.08));
        PsramBitcell cell(config);
        cell.initialize(false);
        return cell.write(true).total_energy() * 1e12;  // pJ
      });
  EXPECT_NEAR(summary.mean, 0.493, 0.03);
  EXPECT_LT(summary.std_dev, 0.05);
}

// ---------------------------------------------------------------------------
// Vector macro: random-vector accuracy sweep at several precisions.
// ---------------------------------------------------------------------------

class MacroPrecision : public ::testing::TestWithParam<unsigned> {};

TEST_P(MacroPrecision, RandomVectorsTrackIdealWithinBudget) {
  VectorMacroConfig config;
  config.weight_bits = GetParam();
  VectorComputeMacro macro(config);
  Rng rng(500 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint32_t> weights(4);
    std::vector<double> inputs(4);
    for (auto& w : weights)
      w = static_cast<std::uint32_t>(rng.below(macro.max_weight() + 1));
    for (auto& x : inputs) x = rng.uniform();
    macro.load_weights(weights);
    const double measured = macro.multiply(inputs).normalized;
    const double ideal = macro.ideal_normalized(inputs);
    ASSERT_NEAR(measured, ideal, 0.015)
        << "bits=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, MacroPrecision, ::testing::Values(1, 2, 3, 4, 6));

// ---------------------------------------------------------------------------
// Readout gain: codes scale as expected and clamp at full scale.
// ---------------------------------------------------------------------------

TEST(TensorCoreGain, ReadoutGainScalesCodes) {
  TensorCore core;
  std::vector<std::vector<std::uint32_t>> w(
      16, std::vector<std::uint32_t>(16, 2));
  core.load_weights(w);
  const std::vector<double> input(16, 0.5);

  const auto base = core.multiply(input);
  core.set_readout_gain(2.0);
  const auto boosted = core.multiply(input);
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_GE(boosted[r], base[r]);
    EXPECT_NEAR(static_cast<double>(boosted[r]),
                2.0 * static_cast<double>(base[r]), 1.5);
  }
  core.set_readout_gain(100.0);  // saturates at the top code
  const auto clamped = core.multiply(input);
  for (unsigned c : clamped) EXPECT_EQ(c, 7u);
  EXPECT_THROW(core.set_readout_gain(0.0), std::invalid_argument);
}

}  // namespace
