// Property/fuzz-style randomized tiling tests: ~100 seeded random
// (m, k, n, batch, cores) matmul shapes asserting three invariants that no
// hand-picked shape table can pin down exhaustively:
//
//  1. fleet matmul == single-core PhotonicBackend matmul, bit for bit
//     (the canonical-order determinism contract, for every shape);
//  2. fleet matmul tracks the float reference within the tolerance the
//     3-bit weight quantization and device nonidealities allow;
//  3. matmul_cached through a shared WeightPlanCache == the uncached call,
//     bit for bit, with plans rebuilt only on weight-content changes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/linalg.hpp"
#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "core/tensor_core.hpp"
#include "nn/backend.hpp"
#include "runtime/accelerator.hpp"

namespace {

using namespace ptc;

constexpr std::size_t kShapes = 100;

struct RandomShape {
  std::size_t samples;
  std::size_t k;
  std::size_t m;
  std::size_t cores;
  bool differential;
  bool quantize;
};

RandomShape draw_shape(Rng& rng) {
  RandomShape s;
  s.samples = 1 + rng.below(6);
  s.k = 1 + rng.below(40);
  s.m = 1 + rng.below(40);
  s.cores = 1 + rng.below(4);
  s.differential = rng.bernoulli(0.5);
  s.quantize = rng.bernoulli(0.3);
  return s;
}

/// One prebuilt fleet per core count — core construction is the expensive
/// part, the shapes stream through them.
class PropertyTiling : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fleets_ = new std::vector<std::unique_ptr<runtime::Accelerator>>();
    for (std::size_t cores = 1; cores <= 4; ++cores) {
      fleets_->push_back(std::make_unique<runtime::Accelerator>(
          runtime::AcceleratorConfig{.cores = cores}));
    }
    single_ = new core::TensorCore();
  }
  static void TearDownTestSuite() {
    delete fleets_;
    fleets_ = nullptr;
    delete single_;
    single_ = nullptr;
  }

  static std::vector<std::unique_ptr<runtime::Accelerator>>* fleets_;
  static core::TensorCore* single_;
};

std::vector<std::unique_ptr<runtime::Accelerator>>* PropertyTiling::fleets_ =
    nullptr;
core::TensorCore* PropertyTiling::single_ = nullptr;

TEST_F(PropertyTiling, FleetMatchesSingleCoreAndFloatReferenceOnRandomShapes) {
  Rng rng(20260727);
  double worst_relative = 0.0;
  for (std::size_t iter = 0; iter < kShapes; ++iter) {
    const RandomShape shape = draw_shape(rng);
    SCOPED_TRACE(::testing::Message()
                 << "iter " << iter << ": samples=" << shape.samples
                 << " k=" << shape.k << " m=" << shape.m
                 << " cores=" << shape.cores
                 << " differential=" << shape.differential
                 << " quantize=" << shape.quantize);

    const Matrix x = random_activations(shape.samples, shape.k, rng);
    const Matrix w = random_signed(shape.k, shape.m, rng);
    nn::PhotonicBackendOptions options;
    options.quantize_output = shape.quantize;
    options.differential_weights = shape.differential;

    runtime::Accelerator& fleet = *(*fleets_)[shape.cores - 1];
    const Matrix y = fleet.matmul(x, w, options);
    ASSERT_EQ(y.rows(), shape.samples);
    ASSERT_EQ(y.cols(), shape.m);

    // (1) Bit-identical to the sequential single-core backend.
    nn::PhotonicBackend reference_core(*single_, options);
    const Matrix y_single = reference_core.matmul(x, w);
    EXPECT_EQ(y.max_abs_diff(y_single), 0.0);

    // (2) Within quantization tolerance of the float reference.  The
    // dominant error is the 3-bit weight grid (step max|w| / 3.5); device
    // nonidealities (extinction floor, crosstalk) add a few percent.  The
    // bound is loose enough to be shape-independent but tight enough that
    // any mis-tiled index or dropped pass (errors of order a full column)
    // blows through it.
    double w_max = 0.0;
    for (double v : w.data()) w_max = std::max(w_max, std::abs(v));
    const Matrix y_ref = matmul(x, w);
    double tolerance =
        w_max * (0.35 * std::sqrt(static_cast<double>(shape.k)) +
                 0.03 * static_cast<double>(shape.k)) +
        1e-12;
    if (shape.quantize) {
      // The 3-bit eoADC rounds each pass's row value to a 1/max_code grid;
      // after the x tile_k un-normalization that is up to
      // tile_k / max_code per pass, accumulated over the k-tile passes
      // (doubled by the offset encoding's 2 * unit_dot term).
      const double k_tiles = std::ceil(static_cast<double>(shape.k) / 16.0);
      tolerance += w_max * 2.0 * (16.0 / 7.0) * k_tiles;
    }
    const double err = y.max_abs_diff(y_ref);
    EXPECT_LE(err, tolerance);
    worst_relative = std::max(worst_relative, err / tolerance);
  }
  // The tolerance is doing work (not vacuously loose).
  EXPECT_GT(worst_relative, 0.05);
}

TEST_F(PropertyTiling, CachedMatmulIsBitIdenticalToUncachedOnRandomShapes) {
  Rng rng(424242);
  nn::WeightPlanCache cache(16);
  for (std::size_t iter = 0; iter < kShapes; ++iter) {
    const RandomShape shape = draw_shape(rng);
    SCOPED_TRACE(::testing::Message()
                 << "iter " << iter << ": samples=" << shape.samples
                 << " k=" << shape.k << " m=" << shape.m
                 << " cores=" << shape.cores);

    const Matrix x = random_activations(shape.samples, shape.k, rng);
    const Matrix w = random_signed(shape.k, shape.m, rng);
    nn::PhotonicBackendOptions options;
    options.quantize_output = shape.quantize;
    options.differential_weights = shape.differential;

    runtime::Accelerator& fleet = *(*fleets_)[shape.cores - 1];
    const std::size_t builds_before = cache.builds();
    const Matrix y_cached = fleet.matmul(x, w, options, cache);
    EXPECT_EQ(cache.builds(), builds_before + 1);  // fresh weights: one build

    const Matrix y_uncached = fleet.matmul(x, w, options);
    EXPECT_EQ(y_cached.max_abs_diff(y_uncached), 0.0);

    // Replaying the same weights through the shared cache re-plans nothing
    // and changes nothing.
    const std::size_t builds_after = cache.builds();
    const Matrix y_replay = fleet.matmul(x, w, options, cache);
    EXPECT_EQ(cache.builds(), builds_after);
    EXPECT_EQ(y_replay.max_abs_diff(y_cached), 0.0);
  }
}

}  // namespace
