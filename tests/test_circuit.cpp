#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"

namespace {

using namespace ptc::circuit;

TEST(FirstOrderLag, ExactDiscreteStep) {
  FirstOrderLag lag(1e-9, 0.0);
  // One full time constant toward 1.0: 1 - e^-1.
  lag.step(1.0, 1e-9);
  EXPECT_NEAR(lag.value(), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(FirstOrderLag, StableForLargeSteps) {
  FirstOrderLag lag(1e-12, 0.0);
  // dt >> tau must not overshoot (exact discretization, not forward Euler).
  lag.step(1.0, 1e-9);
  EXPECT_LE(lag.value(), 1.0);
  EXPECT_NEAR(lag.value(), 1.0, 1e-9);
}

TEST(FirstOrderLag, ManySmallStepsMatchAnalytic) {
  FirstOrderLag lag(5e-12, 0.0);
  const double dt = 0.1e-12;
  for (int i = 0; i < 100; ++i) lag.step(2.0, dt);
  EXPECT_NEAR(lag.value(), 2.0 * (1.0 - std::exp(-10e-12 / 5e-12)), 1e-9);
  EXPECT_THROW(lag.step(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(FirstOrderLag(0.0), std::invalid_argument);
}

TEST(Circuit, NodeLifecycle) {
  Circuit ckt;
  const auto n = ckt.add_node({.capacitance = 1e-15, .v_init = 0.5});
  EXPECT_EQ(ckt.node_count(), 1u);
  EXPECT_DOUBLE_EQ(ckt.voltage(n), 0.5);
  EXPECT_DOUBLE_EQ(ckt.capacitance(n), 1e-15);
  ckt.set_voltage(n, 1.0);
  EXPECT_DOUBLE_EQ(ckt.voltage(n), 1.0);
  EXPECT_THROW(ckt.voltage(5), std::invalid_argument);
}

TEST(Circuit, CurrentIntegration) {
  Circuit ckt;
  const auto n = ckt.add_node({.capacitance = 10e-15, .v_init = 0.0});
  // 1 mA into 10 fF for 1 ps -> dV = I dt / C = 0.1 V.
  ckt.inject_current(n, 1e-3);
  ckt.step(1e-12);
  EXPECT_NEAR(ckt.voltage(n), 0.1, 1e-12);
  // Accumulator cleared: stepping again without current keeps the voltage.
  ckt.step(1e-12);
  EXPECT_NEAR(ckt.voltage(n), 0.1, 1e-12);
}

TEST(Circuit, MultipleInjectionsSum) {
  Circuit ckt;
  const auto n = ckt.add_node({.capacitance = 1e-15, .v_init = 0.0});
  ckt.inject_current(n, 2e-6);
  ckt.inject_current(n, -0.5e-6);
  ckt.step(1e-13);
  EXPECT_NEAR(ckt.voltage(n), 1.5e-6 * 1e-13 / 1e-15, 1e-12);
}

TEST(Circuit, RailClamping) {
  Circuit ckt;
  const auto n =
      ckt.add_node({.capacitance = 1e-15, .v_init = 1.7, .v_min = 0.0,
                    .v_max = 1.8});
  ckt.inject_current(n, 1e-3);
  ckt.step(1e-12);
  EXPECT_DOUBLE_EQ(ckt.voltage(n), 1.8);
  ckt.inject_current(n, -1e-3);
  ckt.step(1e-9);
  EXPECT_DOUBLE_EQ(ckt.voltage(n), 0.0);
  // set_voltage also clamps.
  ckt.set_voltage(n, 5.0);
  EXPECT_DOUBLE_EQ(ckt.voltage(n), 1.8);
}

TEST(Circuit, RcDischargeThroughFeedback) {
  // Model a resistor to ground as a voltage-dependent current source and
  // check the exponential decay: tau = R C = 1 ns.
  Circuit ckt;
  const auto n = ckt.add_node({.capacitance = 1e-12, .v_init = 1.0});
  const double r = 1e3;
  const double dt = 1e-12;
  for (int i = 0; i < 1000; ++i) {
    ckt.inject_current(n, -ckt.voltage(n) / r);
    ckt.step(dt);
  }
  EXPECT_NEAR(ckt.voltage(n), std::exp(-1.0), 2e-3);
}

TEST(Circuit, RejectsBadNodes) {
  Circuit ckt;
  EXPECT_THROW(ckt.add_node({.capacitance = 0.0}), std::invalid_argument);
  EXPECT_THROW(ckt.add_node({.capacitance = 1e-15, .v_init = 2.0,
                             .v_min = 0.0, .v_max = 1.8}),
               std::invalid_argument);
  EXPECT_THROW(ckt.step(0.0), std::invalid_argument);
}

}  // namespace
