// Graph compiler: IR construction and validation, lowering + epilogue
// fusion, the executor against every backend, and the subsystem's two
// contracts — (1) an nn::Mlp lowered through the compiler reproduces the
// direct backend path bit for bit, and (2) a conv -> pool -> dense CNN
// compiles, runs on the multi-core fleet bit-identically to a single
// photonic core, and serves through serve::Server with warm residency.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "core/tensor_core.hpp"
#include "graph/compile.hpp"
#include "graph/executor.hpp"
#include "graph/ir.hpp"
#include "graph/models.hpp"
#include "nn/backend.hpp"
#include "nn/layers.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/backend.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"

namespace {

using namespace ptc;
using namespace ptc::graph;

// ---------------------------------------------------------------------------
// IR: shapes, builder validation, shape inference
// ---------------------------------------------------------------------------

TEST(GraphIr, ShapeSizeAndFormatting) {
  EXPECT_EQ((Shape{{8, 8, 1}}).size(), 64u);
  EXPECT_EQ((Shape{{54}}).size(), 54u);
  EXPECT_EQ((Shape{{6, 5, 3}}).str(), "6x5x3");
  EXPECT_TRUE((Shape{{6, 5, 3}}).is_image());
  EXPECT_FALSE((Shape{{30}}).is_image());
  EXPECT_EQ((Shape{{6, 5, 3}}).channels(), 3u);
  EXPECT_EQ((Shape{{30}}).channels(), 30u);
}

TEST(GraphIr, BuilderInfersShapesThroughACnn) {
  Graph g;
  const auto x = g.input(Shape{{8, 8, 1}});
  const auto c = g.conv2d(x, Matrix(9, 6), 3);
  EXPECT_EQ(g.node(c).shape, (Shape{{6, 6, 6}}));
  const auto r = g.relu(c);
  const auto p = g.maxpool(r, 2);
  EXPECT_EQ(g.node(p).shape, (Shape{{3, 3, 6}}));
  const auto f = g.flatten(p);
  EXPECT_EQ(g.node(f).shape, (Shape{{54}}));
  const auto m = g.matmul(f, Matrix(54, 10));
  EXPECT_EQ(g.node(m).shape, (Shape{{10}}));
  const auto s = g.softmax(m);
  EXPECT_EQ(g.output_id(), s);
  EXPECT_EQ(g.output_shape(), (Shape{{10}}));
  EXPECT_NE(g.dump().find("conv2d"), std::string::npos);
}

TEST(GraphIr, BuilderRejectsIllFormedWiring) {
  Graph g;
  const auto x = g.input(Shape{{4, 4, 1}});
  EXPECT_THROW(g.input(Shape{{4}}), std::invalid_argument);  // second input
  EXPECT_THROW(g.matmul(x, Matrix(16, 4)), std::invalid_argument);  // image
  EXPECT_THROW(g.conv2d(x, Matrix(8, 2), 3), std::invalid_argument);  // rows
  EXPECT_THROW(g.conv2d(x, Matrix(25, 2), 5), std::invalid_argument);  // big
  EXPECT_THROW(g.maxpool(x, 5), std::invalid_argument);  // window too big
  EXPECT_THROW(g.softmax(x), std::invalid_argument);     // image softmax
  EXPECT_THROW(g.bias(x, std::vector<double>(3, 0.0)),
               std::invalid_argument);  // bias length != channels
  const auto f = g.flatten(x);
  EXPECT_THROW(g.add(f, x), std::invalid_argument);  // shape mismatch
  EXPECT_THROW(g.matmul(f, Matrix(9, 4)), std::invalid_argument);  // width
  Graph empty;
  EXPECT_THROW(empty.matmul(0, Matrix(4, 4)), std::invalid_argument);
}

// What a builder precondition actually said when it fired.
template <typename F>
std::string builder_error(F&& build) {
  try {
    build();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(GraphIr, BuilderRejectsMalformedInputShapes) {
  Graph rank2;
  EXPECT_THROW(rank2.input(Shape{{4, 4}}), std::invalid_argument);
  Graph rank0;
  EXPECT_THROW(rank0.input(Shape{{}}), std::invalid_argument);
  Graph zero;
  EXPECT_THROW(zero.input(Shape{{0}}), std::invalid_argument);
  Graph zero_channel;
  EXPECT_THROW(zero_channel.input(Shape{{4, 4, 0}}), std::invalid_argument);
}

TEST(GraphIr, BuilderRejectsUseBeforeDefOnEveryOperand) {
  Graph g;
  const auto x = g.input(Shape{{4, 4, 1}});
  const auto missing = x + 7;  // never built
  EXPECT_THROW(g.relu(missing), std::invalid_argument);
  EXPECT_THROW(g.flatten(missing), std::invalid_argument);
  EXPECT_THROW(g.softmax(missing), std::invalid_argument);
  EXPECT_THROW(g.maxpool(missing, 2), std::invalid_argument);
  EXPECT_THROW(g.bias(missing, {0.0}), std::invalid_argument);
  EXPECT_THROW(g.conv2d(missing, Matrix(9, 2), 3), std::invalid_argument);
  EXPECT_THROW(g.matmul(missing, Matrix(4, 4)), std::invalid_argument);
  EXPECT_THROW(g.add(x, missing), std::invalid_argument);  // second operand
  EXPECT_THROW(g.node(missing), std::invalid_argument);
  // The diagnostic names the offending id and the graph size.
  const std::string what = builder_error([&] { g.relu(missing); });
  EXPECT_NE(what.find(std::to_string(missing)), std::string::npos);
  EXPECT_NE(what.find("1 nodes"), std::string::npos);
}

TEST(GraphIr, BuilderRejectsDegenerateOperators) {
  Graph g;
  const auto x = g.input(Shape{{4, 4, 1}});
  EXPECT_THROW(g.conv2d(x, Matrix(0, 0), 0), std::invalid_argument);
  EXPECT_THROW(g.conv2d(x, Matrix(9, 0), 3), std::invalid_argument);
  EXPECT_THROW(g.maxpool(x, 0), std::invalid_argument);
  const auto f = g.flatten(x);
  EXPECT_THROW(g.matmul(f, Matrix(16, 0)), std::invalid_argument);
  EXPECT_THROW(g.flatten(f), std::invalid_argument);  // already rank 1
  EXPECT_THROW(g.maxpool(f, 2), std::invalid_argument);  // vector maxpool
  EXPECT_THROW(g.conv2d(f, Matrix(9, 2), 3), std::invalid_argument);
}

TEST(GraphIr, ShapeMismatchDiagnosticsCarryTheActualShapes) {
  Graph g;
  const auto x = g.input(Shape{{4, 4, 2}});
  const std::string bias_what =
      builder_error([&] { g.bias(x, std::vector<double>(5, 0.0)); });
  EXPECT_NE(bias_what.find("5"), std::string::npos);
  EXPECT_NE(bias_what.find("4x4x2"), std::string::npos);

  const std::string conv_what =
      builder_error([&] { g.conv2d(x, Matrix(9, 3), 3); });
  EXPECT_NE(conv_what.find("9 rows"), std::string::npos);
  EXPECT_NE(conv_what.find("18"), std::string::npos);  // 3*3*2 expected rows

  const std::string pool_what = builder_error([&] { g.maxpool(x, 9); });
  EXPECT_NE(pool_what.find("9"), std::string::npos);
  EXPECT_NE(pool_what.find("4x4x2"), std::string::npos);
}

TEST(GraphIr, OutputSelectionValidatesAndLastMarkWins) {
  Graph g;
  const auto x = g.input(Shape{{8}});
  const auto a = g.relu(x);
  const auto b = g.softmax(a);
  EXPECT_EQ(g.output_id(), b);  // default: last node
  g.mark_output(a);
  g.mark_output(b);  // re-marking is allowed; the last mark wins
  EXPECT_EQ(g.output_id(), b);
  g.mark_output(a);
  EXPECT_EQ(g.output_id(), a);
  // Later appends no longer steal the output once it is explicit.
  g.relu(b);
  EXPECT_EQ(g.output_id(), a);
  EXPECT_THROW(g.mark_output(99), std::invalid_argument);

  Graph empty;
  EXPECT_THROW(empty.output_id(), std::invalid_argument);
  EXPECT_THROW(empty.input_shape(), std::invalid_argument);
  EXPECT_THROW(empty.output_shape(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Lowering: step selection, epilogue fusion, dead code
// ---------------------------------------------------------------------------

TEST(GraphCompile, MlpLowersToTwoFusedMatmulSteps) {
  Rng rng(7);
  const CompiledGraph cg = compile(
      mlp_graph(random_signed(12, 8, rng), std::vector<double>(8, 0.1),
                random_signed(8, 4, rng), std::vector<double>(4, 0.0)));
  ASSERT_EQ(cg.steps.size(), 2u);
  EXPECT_EQ(cg.steps[0].kind, Step::Kind::kMatmul);
  ASSERT_EQ(cg.steps[0].epilogue.size(), 2u);
  EXPECT_EQ(cg.steps[0].epilogue[0].kind, EpilogueOp::Kind::kBias);
  EXPECT_EQ(cg.steps[0].epilogue[1].kind, EpilogueOp::Kind::kRelu);
  EXPECT_EQ(cg.steps[1].kind, Step::Kind::kMatmul);
  ASSERT_EQ(cg.steps[1].epilogue.size(), 1u);
  EXPECT_EQ(cg.steps[1].epilogue[0].kind, EpilogueOp::Kind::kBias);
  EXPECT_EQ(cg.input_size(), 12u);
  EXPECT_EQ(cg.output_size(), 4u);
}

TEST(GraphCompile, CnnLowersToFourStepsAndFlattenDisappears) {
  Rng rng(7);
  const CompiledGraph cg = compile(cnn_graph(
      8, 8, edge_kernel_bank(6), 3, 2, random_signed(54, 32, rng),
      std::vector<double>(32, 0.0), random_signed(32, 10, rng),
      std::vector<double>(10, 0.0)));
  ASSERT_EQ(cg.steps.size(), 4u);
  EXPECT_EQ(cg.steps[0].kind, Step::Kind::kConv2d);
  ASSERT_EQ(cg.steps[0].epilogue.size(), 1u);
  EXPECT_EQ(cg.steps[0].epilogue[0].kind, EpilogueOp::Kind::kRelu);
  EXPECT_EQ(cg.steps[0].rows_per_sample(), 36u);
  EXPECT_EQ(cg.steps[1].kind, Step::Kind::kMaxPool);
  // flatten fused into the maxpool step's output shape: rank 1 already.
  EXPECT_EQ(cg.steps[1].out_shape, (Shape{{54}}));
  EXPECT_EQ(cg.steps[2].kind, Step::Kind::kMatmul);
  EXPECT_EQ(cg.steps[3].kind, Step::Kind::kMatmul);
  EXPECT_EQ(cg.output_size(), 10u);
}

TEST(GraphCompile, ResidualAddFusesIntoTheSecondMatmul) {
  Rng rng(3);
  const CompiledGraph cg = compile(residual_mlp_graph(
      random_signed(8, 16, rng), std::vector<double>(16, 0.0),
      random_signed(16, 8, rng), std::vector<double>(8, 0.0)));
  ASSERT_EQ(cg.steps.size(), 2u);
  ASSERT_EQ(cg.steps[1].epilogue.size(), 3u);
  EXPECT_EQ(cg.steps[1].epilogue[0].kind, EpilogueOp::Kind::kBias);
  EXPECT_EQ(cg.steps[1].epilogue[1].kind, EpilogueOp::Kind::kResidual);
  EXPECT_EQ(cg.steps[1].epilogue[1].residual_slot, 0u);  // the graph input
  EXPECT_EQ(cg.steps[1].epilogue[2].kind, EpilogueOp::Kind::kRelu);
}

TEST(GraphCompile, DeadBranchesEmitNothing) {
  Rng rng(3);
  Graph g;
  const auto x = g.input(Shape{{8}});
  const auto live = g.matmul(x, random_signed(8, 4, rng));
  g.matmul(x, random_signed(8, 16, rng));  // dead: never consumed
  g.mark_output(live);
  const CompiledGraph cg = compile(g);
  ASSERT_EQ(cg.steps.size(), 1u);
  EXPECT_EQ(cg.steps[0].weights.cols(), 4u);
}

TEST(GraphCompile, SharedValueIsMaterializedNotFused) {
  // relu feeds both sides of an add: it must get its own step + slot.
  Rng rng(5);
  Graph g;
  const auto x = g.input(Shape{{6}});
  const auto m = g.matmul(x, random_signed(6, 6, rng));
  const auto r = g.relu(m);
  g.add(r, r);
  const CompiledGraph cg = compile(g);
  // matmul+relu fuse; the add becomes a host elementwise step.
  ASSERT_EQ(cg.steps.size(), 2u);
  EXPECT_EQ(cg.steps[1].kind, Step::Kind::kElementwise);
  ASSERT_EQ(cg.steps[1].epilogue.size(), 1u);
  EXPECT_EQ(cg.steps[1].epilogue[0].kind, EpilogueOp::Kind::kResidual);
}

TEST(GraphCompile, PassProfileCountsTilesPerStep) {
  Rng rng(7);
  const CompiledGraph cg = compile(cnn_graph(
      8, 8, edge_kernel_bank(6), 3, 2, random_signed(54, 32, rng),
      std::vector<double>(32, 0.0), random_signed(32, 10, rng),
      std::vector<double>(10, 0.0)));
  const PassProfile offset = cg.pass_profile(16, 16, false);
  ASSERT_EQ(offset.steps.size(), 3u);  // conv, dense, dense
  EXPECT_EQ(offset.steps[0].passes, 1u);           // 9x6 -> one tile
  EXPECT_EQ(offset.steps[0].rows_per_sample, 36u);  // 6x6 positions
  EXPECT_EQ(offset.steps[1].passes, 8u);  // ceil(54/16) * ceil(32/16)
  EXPECT_EQ(offset.steps[2].passes, 2u);  // ceil(32/16) * ceil(10/16)
  EXPECT_EQ(offset.total_passes, 11u);
  EXPECT_EQ(cg.pass_profile(16, 16, true).total_passes, 22u);

  const std::string schedule = cg.schedule_dump(16, 16, false);
  EXPECT_NE(schedule.find("conv2d 3x3 -> 6ch +relu"), std::string::npos);
  EXPECT_NE(schedule.find("11 weight-tile passes"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Executor: float semantics
// ---------------------------------------------------------------------------

TEST(GraphExecutor, ConvMatchesHandComputedValidConvolution) {
  Graph g;
  Matrix kernel(4, 1);  // 2x2 kernel {{1, 2}, {3, 4}} flattened (di, dj)
  kernel(0, 0) = 1.0;
  kernel(1, 0) = 2.0;
  kernel(2, 0) = 3.0;
  kernel(3, 0) = 4.0;
  g.conv2d(g.input(Shape{{3, 3, 1}}), kernel, 2);
  const CompiledGraph cg = compile(g);

  Matrix x(1, 9);
  for (std::size_t i = 0; i < 9; ++i) x(0, i) = static_cast<double>(i);
  nn::FloatBackend backend;
  const Matrix y = run(cg, backend, x);
  ASSERT_EQ(y.cols(), 4u);  // 2x2x1 output
  // Window at (0,0): 1*0 + 2*1 + 3*3 + 4*4 = 27, then +1 per column step,
  // +3 per row step, scaled by the kernel sum (10).
  EXPECT_DOUBLE_EQ(y(0, 0), 27.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 37.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 57.0);
  EXPECT_DOUBLE_EQ(y(0, 3), 67.0);
}

TEST(GraphExecutor, MultiChannelConvSumsOverInputChannels) {
  // 1x1 kernel over a 2-channel image: output = 1*ch0 + 10*ch1.
  Graph g;
  Matrix kernel(2, 1);
  kernel(0, 0) = 1.0;
  kernel(1, 0) = 10.0;
  g.conv2d(g.input(Shape{{1, 2, 2}}), kernel, 1);
  const CompiledGraph cg = compile(g);

  Matrix x(1, 4);  // layout (i*w + j) * c + ch
  x(0, 0) = 1.0;  // (0,0) ch0
  x(0, 1) = 2.0;  // (0,0) ch1
  x(0, 2) = 3.0;  // (0,1) ch0
  x(0, 3) = 4.0;  // (0,1) ch1
  nn::FloatBackend backend;
  const Matrix y = run(cg, backend, x);
  ASSERT_EQ(y.cols(), 2u);
  EXPECT_DOUBLE_EQ(y(0, 0), 21.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 43.0);
}

TEST(GraphExecutor, MaxPoolTakesWindowMaximaPerChannel) {
  Graph g;
  g.maxpool(g.input(Shape{{2, 4, 2}}), 2);
  const CompiledGraph cg = compile(g);

  Matrix x(1, 16);
  for (std::size_t i = 0; i < 16; ++i) x(0, i) = static_cast<double>(i);
  nn::FloatBackend backend;
  const Matrix y = run(cg, backend, x);
  ASSERT_EQ(y.cols(), 4u);  // 1x2x2
  // Channel 0 maxima of the two 2x2 windows: indices {0,2,8,10} -> 10 and
  // {4,6,12,14} -> 14; channel 1 is one higher.
  EXPECT_DOUBLE_EQ(y(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 11.0);
  EXPECT_DOUBLE_EQ(y(0, 2), 14.0);
  EXPECT_DOUBLE_EQ(y(0, 3), 15.0);
}

TEST(GraphExecutor, ConvViaGraphMatchesNnConv2dSingleChannel) {
  // The compiler's stacked im2col agrees with the reference nn::conv2d.
  Rng rng(11);
  Matrix img(6, 6);
  for (double& v : img.data()) v = rng.uniform();
  const Matrix sobel{{-1.0, 0.0, 1.0}, {-2.0, 0.0, 2.0}, {-1.0, 0.0, 1.0}};

  nn::FloatBackend backend;
  const Matrix expected = nn::conv2d(backend, img, sobel);

  Matrix kernel(9, 1);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) kernel(idx++, 0) = sobel(i, j);
  Graph g;
  g.conv2d(g.input(Shape{{6, 6, 1}}), kernel, 3);
  Matrix x(1, 36);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) x(0, i * 6 + j) = img(i, j);
  const Matrix actual = run(compile(g), backend, x);

  ASSERT_EQ(actual.cols(), expected.rows() * expected.cols());
  for (std::size_t i = 0; i < expected.rows(); ++i)
    for (std::size_t j = 0; j < expected.cols(); ++j)
      EXPECT_DOUBLE_EQ(actual(0, i * expected.cols() + j), expected(i, j));
}

TEST(GraphExecutor, ResidualBlockMatchesManualComputation) {
  Rng rng(13);
  const Matrix w1 = random_signed(8, 16, rng);
  const Matrix w2 = random_signed(16, 8, rng);
  const std::vector<double> b1(16, 0.25), b2(8, -0.125);
  const CompiledGraph cg = compile(residual_mlp_graph(w1, b1, w2, b2));

  Rng data_rng(17);
  const Matrix x = random_activations(5, 8, data_rng);
  nn::FloatBackend backend;
  const Matrix y = run(cg, backend, x);

  nn::DenseLayer l1(8, 16), l2(16, 8);
  l1.w = w1;
  l1.b = b1;
  l2.w = w2;
  l2.b = b2;
  const Matrix expected =
      nn::relu(l2.forward(backend, nn::relu(l1.forward(backend, x))) + x);
  EXPECT_EQ(y.max_abs_diff(expected), 0.0);
}

TEST(GraphExecutor, SoftmaxEpilogueNormalizesRows) {
  Rng rng(19);
  Graph g;
  const auto x = g.input(Shape{{6}});
  g.softmax(g.matmul(x, random_signed(6, 4, rng)));
  const CompiledGraph cg = compile(g);
  ASSERT_EQ(cg.steps.size(), 1u);  // softmax fused into the matmul epilogue

  Rng data_rng(23);
  nn::FloatBackend backend;
  const Matrix y = run(cg, backend, random_activations(3, 6, data_rng));
  for (std::size_t s = 0; s < y.rows(); ++s) {
    double sum = 0.0;
    for (std::size_t j = 0; j < y.cols(); ++j) sum += y(s, j);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(GraphExecutor, RejectsMismatchedInputWidth) {
  Rng rng(29);
  const CompiledGraph cg = compile(
      mlp_graph(random_signed(12, 8, rng), std::vector<double>(8, 0.0),
                random_signed(8, 4, rng), std::vector<double>(4, 0.0)));
  nn::FloatBackend backend;
  EXPECT_THROW(run(cg, backend, Matrix(2, 11)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Contract 1: Mlp through the compiler is bit-identical to the direct path
// ---------------------------------------------------------------------------

TEST(GraphMlp, ForwardIsBitIdenticalToTheDirectDensePath) {
  Rng rng(2027);
  nn::Mlp mlp(20, 12, 5, rng);
  Rng data_rng(31);
  const Matrix x = random_activations(7, 20, data_rng);

  // The pre-compiler reference path: dense -> relu -> dense by hand.
  const auto direct = [&](nn::MatmulBackend& backend) {
    return mlp.layer2().forward(backend,
                                nn::relu(mlp.layer1().forward(backend, x)));
  };

  nn::FloatBackend reference;
  EXPECT_EQ(mlp.forward(reference, x).max_abs_diff(direct(reference)), 0.0);

  core::TensorCore core;
  nn::PhotonicBackendOptions options;
  options.differential_weights = true;
  nn::PhotonicBackend photonic(core, options);
  EXPECT_EQ(mlp.forward(photonic, x).max_abs_diff(direct(photonic)), 0.0);

  runtime::Accelerator accelerator({.cores = 4});
  runtime::AcceleratorBackend fleet(accelerator, options);
  EXPECT_EQ(mlp.forward(fleet, x).max_abs_diff(direct(fleet)), 0.0);
}

TEST(GraphMlp, ScheduleIsRecompiledAfterTraining) {
  Rng rng(2028);
  nn::Mlp mlp(nn::glyph_pixels, 8, nn::glyph_classes, rng);
  const nn::Dataset data = nn::make_dataset(64, rng, 0.1);
  nn::FloatBackend backend;
  const Matrix before = mlp.forward(backend, data.inputs);
  mlp.train_epoch(data, 0.1, 16, rng);
  const Matrix after = mlp.forward(backend, data.inputs);
  // Training moved the weights; a stale compiled schedule would return
  // `before` unchanged.
  EXPECT_GT(after.max_abs_diff(before), 0.0);
}

// ---------------------------------------------------------------------------
// Contract 2: the CNN on the fleet + through the serving layer
// ---------------------------------------------------------------------------

Graph test_cnn(Rng& rng) {
  return cnn_graph(8, 8, edge_kernel_bank(4), 3, 2,
                   random_signed(36, 16, rng), std::vector<double>(16, 0.05),
                   random_signed(16, 10, rng), std::vector<double>(10, 0.0));
}

TEST(GraphCnn, FleetExecutionIsBitIdenticalToASinglePhotonicCore) {
  Rng rng(41);
  const CompiledGraph cg = compile(test_cnn(rng));
  Rng data_rng(43);
  const Matrix x = random_activations(3, 64, data_rng);

  nn::PhotonicBackendOptions options;
  options.differential_weights = true;

  core::TensorCore core;
  nn::PhotonicBackend single(core, options);
  const Matrix y_single = run(cg, single, x);

  runtime::Accelerator accelerator({.cores = 8});
  runtime::AcceleratorBackend fleet(accelerator, options);
  const Matrix y_fleet = run(cg, fleet, x);

  EXPECT_EQ(y_fleet.max_abs_diff(y_single), 0.0);
  ASSERT_EQ(y_fleet.cols(), 10u);
}

TEST(GraphCnn, AnalogFleetTracksTheFloatReferenceLoosely) {
  Rng rng(41);
  const CompiledGraph cg = compile(test_cnn(rng));
  Rng data_rng(47);
  const Matrix x = random_activations(2, 64, data_rng);

  nn::FloatBackend reference;
  const Matrix y_ref = run(cg, reference, x);

  nn::PhotonicBackendOptions options;
  options.quantize_output = false;  // isolate 3-bit weight quantization
  options.differential_weights = true;
  runtime::Accelerator accelerator({.cores = 8});
  runtime::AcceleratorBackend fleet(accelerator, options);
  const Matrix y_pho = run(cg, fleet, x);

  // Not bit-equal (3-bit pSRAM weights), but clearly the same network.
  EXPECT_LT(y_pho.max_abs_diff(y_ref), 0.35 * y_ref.norm());
}

TEST(GraphServe, RegisteredCnnServesWithWarmResidency) {
  using namespace ptc::serve;
  Rng rng(41);
  runtime::Accelerator accelerator({.cores = 8});
  ModelRegistry registry(accelerator);
  registry.add_graph("cnn", test_cnn(rng));

  // conv (1 tile) + dense 36x16 (3 tiles) + dense 16x10 (1 tile).
  EXPECT_EQ(registry.passes("cnn"), 5u);
  EXPECT_EQ(registry.input_width("cnn"), 64u);
  EXPECT_TRUE(registry.fits_resident("cnn"));
  EXPECT_THROW(registry.add_graph("cnn", test_cnn(rng)),
               std::invalid_argument);

  Server server(registry);
  const LoadGenerator generator(
      {{.name = "t", .model = "cnn", .rate = 1e9, .requests = 24}}, 77);
  const ServeReport report =
      server.run(generator.generate(registry), {.max_batch = 8});

  EXPECT_EQ(report.requests.size(), 24u);
  EXPECT_EQ(report.passes, report.batches.size() * 5u);
  // Every batch after the first rides the resident tiles.
  EXPECT_EQ(report.warm_passes, report.passes - 5u);
  EXPECT_GT(report.warm_fraction(), 0.5);
  EXPECT_GT(report.total.p99, 0.0);

  // The conv step's im2col stream is billed into the batch cost: one
  // 8-request cold CNN batch must take longer than a dense model with the
  // same tile count would.
  registry.reset_residency();
  const BatchDispatch cold =
      registry.run_batch("cnn", random_activations(8, 64, rng));
  EXPECT_EQ(cold.warm_passes, 0u);
  EXPECT_GT(cold.latency,
            accelerator.batch_cost(5, 0, 8).latency);  // rows=1 baseline
}

TEST(GraphServe, ServedLogitsAreDeterministicAcrossRuns) {
  using namespace ptc::serve;
  Rng rng(41);
  const Graph cnn = test_cnn(rng);

  std::vector<std::size_t> first;
  for (std::size_t repeat = 0; repeat < 2; ++repeat) {
    runtime::Accelerator accelerator({.cores = 8, .threads = 1 + repeat * 3});
    ModelRegistry registry(accelerator);
    registry.add_graph("cnn", cnn);
    Server server(registry);
    const LoadGenerator generator(
        {{.name = "t", .model = "cnn", .rate = 5e8, .requests = 16}}, 99);
    const ServeReport report =
        server.run(generator.generate(registry), {.max_batch = 4});
    std::vector<std::size_t> predicted;
    for (const RequestRecord& r : report.requests)
      predicted.push_back(r.predicted);
    if (repeat == 0) {
      first = predicted;
    } else {
      EXPECT_EQ(predicted, first);
    }
  }
}

}  // namespace
