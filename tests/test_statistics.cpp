// Nearest-rank percentile: the serve layer's p50/p95/p99 primitive.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/statistics.hpp"

namespace {

using namespace ptc;

TEST(Percentile, NearestRankMatchesTextbookExample) {
  // The canonical nearest-rank worked example: rank = ceil(p/100 * 5).
  const std::vector<double> xs{15.0, 20.0, 35.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 5.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 30.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 40.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 35.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
}

TEST(Percentile, ZeroReturnsTheMinimum) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.0), 1.0);
}

TEST(Percentile, InputOrderDoesNotMatter) {
  const std::vector<double> shuffled{50.0, 15.0, 40.0, 20.0, 35.0};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 50.0), 35.0);
  EXPECT_DOUBLE_EQ(percentile(shuffled, 95.0), 50.0);
}

TEST(Percentile, SingleElementReturnsItForEveryP) {
  for (const double p : {0.0, 37.5, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile({42.0}, p), 42.0) << "p = " << p;
  }
}

TEST(Percentile, TailRanksOnALargerSample) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 95.0), 95.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 99.9), 100.0);
}

TEST(Percentile, RankIsImmuneToBinaryRepresentationError) {
  // p/100 * n computed naively gives 7.000000000000001 for both of these,
  // which a plain ceil would round up to rank 8.
  std::vector<double> hundred;
  for (int i = 1; i <= 100; ++i) hundred.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(percentile(hundred, 7.0), 7.0);

  std::vector<double> twenty_five;
  for (int i = 1; i <= 25; ++i) twenty_five.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(percentile(twenty_five, 28.0), 7.0);
}

TEST(Percentile, RejectsEmptySampleAndBadP) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 100.5), std::invalid_argument);
}

}  // namespace
