#include <gtest/gtest.h>

#include "common/statistics.hpp"
#include "optics/photodiode.hpp"

namespace {

using namespace ptc;
using namespace ptc::optics;

TEST(Photodiode, LinearResponsivity) {
  PhotodiodeConfig config;
  config.responsivity = 1.0;
  config.dark_current = 10e-9;
  const Photodiode pd(config);
  EXPECT_NEAR(pd.current(0.0), 10e-9, 1e-15);
  EXPECT_NEAR(pd.current(10e-6), 10.01e-6, 1e-12);
  EXPECT_NEAR(pd.current(1e-3), 1.00001e-3, 1e-9);
  EXPECT_THROW(pd.current(-1e-6), std::invalid_argument);
}

TEST(Photodiode, ResponseTimeFromBandwidth) {
  PhotodiodeConfig config;
  config.bandwidth = 50e9;
  const Photodiode pd(config);
  EXPECT_NEAR(pd.response_time_constant(), 3.183e-12, 0.01e-12);
}

TEST(Photodiode, ShotNoiseScalesWithCurrent) {
  const Photodiode pd;
  Rng rng(17);
  auto noise_sigma = [&](double power) {
    std::vector<double> samples(4000);
    for (auto& s : samples) s = pd.noisy_current(power, 10e9, rng);
    return stddev(samples);
  };
  const double sigma_low = noise_sigma(1e-6);
  const double sigma_high = noise_sigma(100e-6);
  EXPECT_GT(sigma_high, sigma_low);
  // Noisy mean tracks the DC value.
  std::vector<double> samples(4000);
  for (auto& s : samples) s = pd.noisy_current(50e-6, 10e9, rng);
  EXPECT_NEAR(mean(samples), pd.current(50e-6), 0.05 * pd.current(50e-6));
}

TEST(Photodiode, NoisyCurrentNeverNegative) {
  const Photodiode pd;
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(pd.noisy_current(1e-9, 50e9, rng), 0.0);
  }
}

TEST(Photodiode, RejectsBadConfig) {
  PhotodiodeConfig bad;
  bad.responsivity = 0.0;
  EXPECT_THROW(Photodiode{bad}, std::invalid_argument);
  bad = {};
  bad.capacitance = 0.0;
  EXPECT_THROW(Photodiode{bad}, std::invalid_argument);
}

TEST(BalancedPhotodiode, SignOfNetCurrent) {
  const BalancedPhotodiode bpd;
  // Top power above reference: positive (charges Qp).
  EXPECT_GT(bpd.net_current(200e-6, 18e-6), 0.0);
  // Below reference: negative (discharges Qp) — the eoADC activation.
  EXPECT_LT(bpd.net_current(1e-6, 18e-6), 0.0);
  // Balanced: dark currents cancel exactly.
  EXPECT_NEAR(bpd.net_current(18e-6, 18e-6), 0.0, 1e-18);
}

TEST(BalancedPhotodiode, MagnitudeMatchesResponsivity) {
  PhotodiodeConfig config;
  config.responsivity = 0.8;
  const BalancedPhotodiode bpd(config);
  EXPECT_NEAR(bpd.net_current(100e-6, 18e-6), 0.8 * 82e-6, 1e-12);
}

}  // namespace
