#include <gtest/gtest.h>

#include <cmath>

#include "baseline/comparison.hpp"
#include "baseline/mzi_mesh.hpp"
#include "baseline/pcm_crossbar.hpp"
#include "common/rng.hpp"

namespace {

using namespace ptc;
using namespace ptc::baseline;

CMatrix random_unitary(std::size_t n, std::uint64_t seed) {
  // QR-free construction: start from a random complex matrix and
  // Gram-Schmidt its columns.
  Rng rng(seed);
  std::vector<std::vector<std::complex<double>>> cols(n);
  for (auto& col : cols) {
    col.resize(n);
    for (auto& v : col) v = {rng.normal(), rng.normal()};
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      std::complex<double> dot{};
      for (std::size_t i = 0; i < n; ++i)
        dot += std::conj(cols[k][i]) * cols[j][i];
      for (std::size_t i = 0; i < n; ++i) cols[j][i] -= dot * cols[k][i];
    }
    double norm = 0.0;
    for (const auto& v : cols[j]) norm += std::norm(v);
    norm = std::sqrt(norm);
    for (auto& v : cols[j]) v /= norm;
  }
  CMatrix u(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) u(i, j) = cols[j][i];
  return u;
}

class MeshSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MeshSizes, ProgramsRandomUnitaryWithHighFidelity) {
  const std::size_t n = GetParam();
  const CMatrix u = random_unitary(n, 1000 + n);
  ASSERT_TRUE(is_unitary(u, 1e-9));
  MziMesh mesh(n);
  mesh.program_unitary(u);
  const CMatrix realized = mesh.realized_unitary();
  EXPECT_LT(realized.max_abs_diff(u), 1e-9) << "n = " << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizes, ::testing::Values(2, 3, 4, 6, 8));

TEST(MziMesh, MziCountIsTriangular) {
  MziMesh mesh(6);
  mesh.program_unitary(random_unitary(6, 7));
  // Reck-style decomposition uses at most n(n-1)/2 elements.
  EXPECT_LE(mesh.mzi_count(), 15u);
  EXPECT_GE(mesh.mzi_count(), 10u);  // dense unitary needs almost all
}

TEST(MziMesh, RejectsNonUnitary) {
  MziMesh mesh(3);
  CMatrix not_unitary(3, 3);
  not_unitary(0, 0) = 2.0;
  EXPECT_THROW(mesh.program_unitary(not_unitary), std::invalid_argument);
}

TEST(MziMesh, PropagateMatchesMatvec) {
  const std::size_t n = 5;
  const CMatrix u = random_unitary(n, 77);
  MziMesh mesh(n);
  mesh.program_unitary(u);
  std::vector<std::complex<double>> in(n);
  Rng rng(3);
  for (auto& v : in) v = {rng.uniform(), rng.uniform()};
  const auto direct = matvec(u, in);
  const auto meshed = mesh.propagate(in);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(direct[i] - meshed[i]), 0.0, 1e-9);
  }
}

TEST(MziMesh, InsertionLossAttenuates) {
  const std::size_t n = 4;
  const CMatrix u = random_unitary(n, 21);
  MziMesh mesh(n);
  mesh.program_unitary(u);
  std::vector<std::complex<double>> in(n, {0.5, 0.0});
  const auto lossless = mesh.propagate(in);
  mesh.set_insertion_loss_db(0.5);
  const auto lossy = mesh.propagate(in);
  double p_lossless = 0.0, p_lossy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p_lossless += std::norm(lossless[i]);
    p_lossy += std::norm(lossy[i]);
  }
  EXPECT_LT(p_lossy, p_lossless);
  EXPECT_THROW(mesh.set_insertion_loss_db(-1.0), std::invalid_argument);
}

TEST(MziProcessor, ProgramsArbitraryRealMatrix) {
  const std::size_t n = 6;
  Rng rng(42);
  Matrix w(n, n);
  for (double& v : w.data()) v = rng.uniform(-1.0, 1.0);
  MziMatrixProcessor processor(n);
  processor.program(w);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto y = processor.multiply(x);
  const auto expected = matvec(w, x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], expected[i], 1e-8);
  }
}

TEST(MziProcessor, DeviceCountQuadratic) {
  // The paper's scalability argument against MZI meshes: O(N^2) devices.
  EXPECT_EQ(MziMatrixProcessor::mzi_count_for(4), 16u);   // 12 MZIs + 4 att
  EXPECT_EQ(MziMatrixProcessor::mzi_count_for(16), 256u);
  EXPECT_EQ(MziMatrixProcessor::mzi_count_for(64), 4096u);
}

TEST(PcmCrossbar, ProgramAndRead) {
  PcmCrossbar xbar;
  Matrix w(16, 16, 0.0);
  w(0, 0) = 1.0;
  w(0, 1) = 0.5;
  xbar.program(w);
  EXPECT_NEAR(xbar.transmittance(0, 0), 0.95, 1e-9);  // t_max
  EXPECT_NEAR(xbar.transmittance(0, 1), 0.5, 0.05);
  EXPECT_NEAR(xbar.transmittance(5, 5), 0.05, 1e-9);  // t_min
}

TEST(PcmCrossbar, MultiplyIsLinearInTransmittance) {
  PcmCrossbarConfig config;
  config.rows = 2;
  config.cols = 2;
  config.t_min = 0.0;
  config.t_max = 1.0;
  config.levels = 256;
  PcmCrossbar xbar(config);
  xbar.program(Matrix{{1.0, 0.5}, {0.0, 0.25}});
  const auto y = xbar.multiply({1.0, 1.0});
  EXPECT_NEAR(y[0], 1.5, 0.01);
  EXPECT_NEAR(y[1], 0.25, 0.01);
}

TEST(PcmCrossbar, WriteCostAndLatency) {
  PcmCrossbar xbar;
  Matrix w(16, 16, 0.7);
  const double latency = xbar.program(w);
  // 256 changed cells over 16 parallel rows at 100 ns each = 1.6 us —
  // versus the pSRAM array's 2.4 ns (the paper's update-speed argument).
  EXPECT_NEAR(latency * 1e6, 1.6, 0.01);
  EXPECT_NEAR(xbar.write_energy_consumed() * 1e9, 256 * 18e-3, 0.1);
  // Unchanged reprogram is free.
  EXPECT_NEAR(xbar.program(w), 0.0, 1e-12);
}

TEST(PcmCrossbar, DriftDegradesOverTime) {
  PcmCrossbar xbar;
  Matrix w(16, 16, 1.0);
  xbar.program(w);
  const auto fresh = xbar.multiply(std::vector<double>(16, 1.0), 0.0);
  const auto aged = xbar.multiply(std::vector<double>(16, 1.0), 3600.0);
  EXPECT_LT(aged[0], fresh[0]);
  EXPECT_GT(aged[0], 0.8 * fresh[0]);  // bounded drift
}

TEST(PcmCrossbar, EnduranceTracking) {
  PcmCrossbarConfig config;
  config.rows = 1;
  config.cols = 1;
  config.endurance = 10;
  PcmCrossbar xbar(config);
  for (int i = 0; i < 12; ++i) {
    Matrix w(1, 1, (i % 2) ? 1.0 : 0.0);
    xbar.program(w);
  }
  EXPECT_EQ(xbar.max_cell_updates(), 12u);
  EXPECT_TRUE(xbar.worn_out());
}

TEST(Comparison, TableHasAllSixRows) {
  const auto rows = table1_rows();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows.back().name, "This Work");
  // Paper Table I values.
  EXPECT_NEAR(rows[0].throughput_tops, 0.12, 0.01);   // [33]
  EXPECT_NEAR(rows[1].throughput_tops, 0.93, 1e-9);   // [48]
  EXPECT_NEAR(rows[2].throughput_tops, 11.0, 1e-9);   // [49]
  EXPECT_NEAR(rows[3].efficiency_tops_w, 10.0, 1e-9); // [50]
  EXPECT_NEAR(rows[4].throughput_tops, 3.98, 1e-9);   // [51]
  EXPECT_NEAR(rows.back().throughput_tops, 4.10, 0.01);
  EXPECT_NEAR(rows.back().efficiency_tops_w, 3.02, 0.03);
}

TEST(Comparison, ThisWorkHasFastestWeightUpdateExceptTfln) {
  const auto rows = table1_rows();
  const double ours = rows.back().weight_update_hz;
  EXPECT_DOUBLE_EQ(ours, 20e9);
  for (std::size_t i = 1; i + 1 < rows.size(); ++i) {  // skip [33] (60 GHz EO)
    EXPECT_GT(ours, rows[i].weight_update_hz) << rows[i].name;
  }
  // [33] updates faster but computes 34x slower than this work.
  EXPECT_GT(rows[0].weight_update_hz, ours);
  EXPECT_LT(rows[0].throughput_tops, 0.1 * rows.back().throughput_tops);
}

}  // namespace
