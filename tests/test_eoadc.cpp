#include <gtest/gtest.h>

#include <cmath>

#include "core/eoadc.hpp"

namespace {

using namespace ptc::core;

TEST(EoAdc, QuantizationGeometry) {
  EoAdc adc;
  EXPECT_EQ(adc.bits(), 3u);
  EXPECT_EQ(adc.channel_count(), 8u);
  EXPECT_DOUBLE_EQ(adc.lsb(), 0.5);
  EXPECT_EQ(adc.max_code(), 7u);
  // References sit at bin centres.
  EXPECT_NEAR(adc.reference_voltage(0), 0.25, 1e-12);
  EXPECT_NEAR(adc.reference_voltage(7), 3.75, 1e-12);
}

class BinCentres : public ::testing::TestWithParam<unsigned> {};

TEST_P(BinCentres, OneHotAtEveryBinCentre) {
  const unsigned bin = GetParam();
  EoAdc adc;
  const double v = (bin + 0.5) * adc.lsb();
  const auto conv = adc.convert(v);
  EXPECT_EQ(conv.code, bin);
  EXPECT_TRUE(conv.any_active);
  EXPECT_FALSE(conv.boundary);
  EXPECT_FALSE(conv.fault);
  // Exactly one channel active: the 1-hot property.
  std::size_t active = 0;
  for (bool a : conv.active) active += a ? 1 : 0;
  EXPECT_EQ(active, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBins, BinCentres,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

TEST(EoAdc, PaperFig9StaticCases) {
  EoAdc adc;
  EXPECT_EQ(adc.code(0.72), 0b001u);
  EXPECT_EQ(adc.code(3.30), 0b110u);
  const auto boundary = adc.convert(2.0);
  EXPECT_EQ(boundary.code, 0b100u);
  EXPECT_TRUE(boundary.boundary);  // B4 and B5 both fired
}

TEST(EoAdc, BoundaryDoubleActivationPattern) {
  EoAdc adc;
  const auto conv = adc.convert(2.0);
  std::size_t active = 0;
  for (bool a : conv.active) active += a ? 1 : 0;
  EXPECT_EQ(active, 2u);
  EXPECT_TRUE(conv.active[3]);
  EXPECT_TRUE(conv.active[4]);
}

TEST(EoAdc, MonotoneTransferFunction) {
  EoAdc adc;
  unsigned prev = 0;
  for (double v = 0.0; v <= 4.0; v += 0.01) {
    const unsigned code = adc.code(v);
    EXPECT_GE(code, prev) << "non-monotonic at " << v;
    prev = code;
  }
  EXPECT_EQ(prev, 7u);  // reaches full scale
}

TEST(EoAdc, CodeEdgesUniformlySpaced) {
  EoAdc adc;
  const auto edges = adc.code_edges();
  ASSERT_EQ(edges.size(), 7u);
  for (std::size_t k = 0; k + 1 < edges.size(); ++k) {
    EXPECT_NEAR(edges[k + 1] - edges[k], 0.5, 0.01);
  }
  // Small uniform offset from the activation-window overlap is expected.
  EXPECT_NEAR(edges[0], 0.49, 0.02);
}

TEST(EoAdc, LinearityCleanLadder) {
  EoAdc adc;
  const auto lin = adc.linearity();
  EXPECT_LT(lin.max_abs_dnl, 0.1);
  EXPECT_LT(lin.max_abs_inl, 0.1);
  EXPECT_FALSE(lin.missing_codes);  // Fig. 10: no missing codes
}

TEST(EoAdc, MismatchedLadderDegradesDnlWithoutMissingCodes) {
  EoAdcConfig config;
  config.vref_mismatch_sigma = 8e-3;
  config.mismatch_seed = 5;
  EoAdc adc(config);
  const auto lin = adc.linearity();
  EXPECT_GT(lin.max_abs_dnl, 0.005);  // visible DNL
  EXPECT_LT(lin.max_abs_dnl, 0.5);
  EXPECT_FALSE(lin.missing_codes);
}

TEST(EoAdc, Fig8ChannelPowerDipsAtReferences) {
  EoAdc adc;
  for (std::size_t ch = 0; ch < 8; ++ch) {
    const double at_ref = adc.channel_thru_power(ch, adc.reference_voltage(ch));
    EXPECT_LT(at_ref, 1e-6);  // deep notch at own reference
    // Half a volt away the channel is far above threshold.
    const double away =
        adc.channel_thru_power(ch, adc.reference_voltage(ch) + 0.5);
    EXPECT_GT(away, 2.5 * 18e-6);
  }
}

TEST(EoAdc, PowerBudgetMatchesPaper) {
  const EoAdc adc;
  EXPECT_NEAR(adc.optical_power_delivered() * 1e3, 1.744, 1e-6);
  EXPECT_NEAR(adc.optical_wall_power() * 1e3, 7.58, 0.01);   // paper: 7.58 mW
  EXPECT_NEAR(adc.electrical_power() * 1e3, 11.0, 0.1);      // paper: 11 mW
  EXPECT_NEAR(adc.energy_per_conversion() * 1e12, 2.32, 0.02);  // 2.32 pJ
  EXPECT_DOUBLE_EQ(adc.sample_rate(), 8e9);                  // 8 GS/s
}

TEST(EoAdc, AmplifierLessModeMatchesPaper) {
  EoAdcConfig config;
  config.use_amplifier_chain = false;
  const EoAdc slow(config);
  const EoAdc fast;
  // Paper: 416.7 MS/s with 58% less electrical power.
  EXPECT_NEAR(slow.sample_rate() / 1e6, 416.7, 25.0);
  const double reduction =
      1.0 - slow.electrical_power() / fast.electrical_power();
  EXPECT_NEAR(reduction, 0.58, 0.01);
}

class TransientVsStatic : public ::testing::TestWithParam<double> {};

TEST_P(TransientVsStatic, TransientCodeMatchesStatic) {
  EoAdc adc;
  const double v = GetParam();
  const unsigned expected = adc.code(v);
  const auto result = adc.convert_transient(v);
  EXPECT_EQ(result.conversion.code, expected) << "at " << v << " V";
  EXPECT_TRUE(result.completed);
}

INSTANTIATE_TEST_SUITE_P(Voltages, TransientVsStatic,
                         ::testing::Values(0.1, 0.72, 1.3, 1.6, 2.0, 2.4, 2.9,
                                           3.3, 3.9));

TEST(EoAdc, TransientDecisionWithinSamplingWindow) {
  EoAdc adc;
  // Worst case is near a code edge where the balanced current is smallest.
  const auto result = adc.convert_transient(1.95);
  EXPECT_TRUE(result.completed);
  EXPECT_LT(result.decision_time, 125e-12);  // inside the 8 GS/s window
}

TEST(EoAdc, TransientBoundaryCeiling) {
  EoAdc adc;
  const auto result = adc.convert_transient(2.0);
  EXPECT_EQ(result.conversion.code, 0b100u);
  EXPECT_TRUE(result.conversion.boundary);
}

TEST(EoAdc, TransientTracesRecorded) {
  EoAdc adc;
  ptc::sim::TraceSet traces;
  adc.convert_transient(0.72, &traces);
  ASSERT_TRUE(traces.contains("qp1"));
  ASSERT_TRUE(traces.contains("b1"));
  // The active channel's Qp discharges below its 0.9 V bias point.
  EXPECT_LT(traces.get("qp1").final_value(), 0.9);
  // An inactive channel's Qp climbs instead.
  EXPECT_GT(traces.get("qp5").final_value(), 0.9);
}

TEST(EoAdc, FourBitVariantWorks) {
  EoAdcConfig config;
  config.bits = 4;
  EoAdc adc(config);
  EXPECT_EQ(adc.channel_count(), 16u);
  EXPECT_DOUBLE_EQ(adc.lsb(), 0.25);
  // Spot-check a few bins.
  EXPECT_EQ(adc.code(0.125), 0u);
  EXPECT_EQ(adc.code(2.125), 8u);
  EXPECT_EQ(adc.code(3.875), 15u);
}

TEST(EoAdc, RejectsBadConfig) {
  EoAdcConfig bad;
  bad.bits = 5;
  EXPECT_THROW(EoAdc{bad}, std::invalid_argument);
  bad = {};
  bad.trip_offset_ratio = 0.9;
  EXPECT_THROW(EoAdc{bad}, std::invalid_argument);
}

}  // namespace
