#include <gtest/gtest.h>

#include <cmath>

#include "adc/cascaded.hpp"
#include "adc/ideal_adc.hpp"

namespace {

using namespace ptc::adc;

TEST(CascadedAdc, SixBitsFromTwoThreeBitSlices) {
  CascadedEoAdc adc;
  EXPECT_EQ(adc.bits(), 6u);
  EXPECT_EQ(adc.max_code(), 63u);
  EXPECT_NEAR(adc.lsb(), 4.0 / 64.0, 1e-12);
}

TEST(CascadedAdc, MonotoneTransfer) {
  CascadedEoAdc adc;
  unsigned prev = 0;
  for (double v = 0.0; v <= 4.0; v += 0.002) {
    const unsigned code = adc.convert(v);
    EXPECT_GE(code + 1, prev) << "non-monotonic at " << v;  // allow +-0 jitter
    prev = std::max(prev, code);
  }
  EXPECT_GE(prev, 62u);  // reaches (nearly) full scale
}

TEST(CascadedAdc, TracksIdealSixBitQuantizer) {
  CascadedEoAdc adc;
  const IdealAdc ideal(6, 4.0);
  double worst = 0.0;
  for (double v = 0.02; v < 3.98; v += 0.013) {
    const double err = std::fabs(static_cast<double>(adc.convert(v)) -
                                 static_cast<double>(ideal.convert(v)));
    worst = std::max(worst, err);
  }
  // Stage-boundary offsets cost a couple of fine LSBs, not coarse ones.
  EXPECT_LE(worst, 3.0);
}

TEST(CascadedAdc, AllCodesReachable) {
  CascadedEoAdc adc;
  std::vector<bool> seen(64, false);
  for (double v = 0.0; v <= 4.0; v += 0.0005) {
    seen[adc.convert(v)] = true;
  }
  std::size_t count = 0;
  for (bool s : seen) count += s ? 1 : 0;
  EXPECT_GE(count, 62u);  // no broad missing-code regions
}

TEST(CascadedAdc, ResidueWithinFineRange) {
  CascadedEoAdc adc;
  for (double v = 0.0; v <= 4.0; v += 0.05) {
    const double r = adc.residue(v);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 4.0);
  }
}

TEST(CascadedAdc, PipelinedRateAndPower) {
  CascadedEoAdc adc;
  EXPECT_DOUBLE_EQ(adc.sample_rate(), 8e9);  // slice rate, pipelined
  // Two slices + residue amp: ~2x the single-slice power.
  EXPECT_NEAR(adc.total_power() * 1e3, 2.0 * 18.6 + 2.0, 0.5);
  EXPECT_NEAR(adc.energy_per_conversion() * 1e12, 4.9, 0.2);
}

TEST(CascadedAdc, ResidueGainErrorDegradesAccuracy) {
  CascadedAdcConfig imperfect;
  imperfect.residue_gain_error = 0.05;  // 5% inter-stage gain error
  CascadedEoAdc bad(imperfect);
  CascadedEoAdc good;
  const IdealAdc ideal(6, 4.0);
  double err_bad = 0.0, err_good = 0.0;
  for (double v = 0.02; v < 3.98; v += 0.007) {
    err_bad += std::fabs(static_cast<double>(bad.convert(v)) -
                         static_cast<double>(ideal.convert(v)));
    err_good += std::fabs(static_cast<double>(good.convert(v)) -
                          static_cast<double>(ideal.convert(v)));
  }
  EXPECT_GT(err_bad, err_good);
}

TEST(CascadedAdc, RejectsMismatchedStages) {
  CascadedAdcConfig bad;
  bad.fine.v_full_scale = 2.0;
  EXPECT_THROW(CascadedEoAdc{bad}, std::invalid_argument);
}

}  // namespace
