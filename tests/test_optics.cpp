#include <gtest/gtest.h>

#include <cmath>

#include "optics/frequency_comb.hpp"
#include "optics/laser.hpp"
#include "optics/optical_signal.hpp"
#include "optics/splitter.hpp"
#include "optics/spectrum.hpp"
#include "optics/waveguide.hpp"
#include "optics/coupler.hpp"

namespace {

using namespace ptc::optics;

TEST(WavelengthGrid, UniformConstruction) {
  const auto grid = WavelengthGrid::uniform(1310e-9, 2.33e-9, 4);
  EXPECT_EQ(grid.size(), 4u);
  EXPECT_DOUBLE_EQ(grid.wavelength(0), 1310e-9);
  EXPECT_NEAR(grid.wavelength(3), 1316.99e-9, 1e-14);
  EXPECT_NEAR(grid.spacing(), 2.33e-9, 1e-15);
}

TEST(WavelengthGrid, NearestChannel) {
  const auto grid = WavelengthGrid::uniform(1310e-9, 2.33e-9, 4);
  EXPECT_EQ(grid.nearest_channel(1310.1e-9), 0u);
  EXPECT_EQ(grid.nearest_channel(1312.0e-9), 1u);
  EXPECT_EQ(grid.nearest_channel(1400e-9), 3u);
}

TEST(WavelengthGrid, RejectsUnsortedAndEmpty) {
  EXPECT_THROW(WavelengthGrid({1310e-9, 1309e-9}), std::invalid_argument);
  EXPECT_THROW(WavelengthGrid(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(WavelengthGrid({1310e-9, 1310e-9}), std::invalid_argument);
}

TEST(WdmSignal, AddChannelAndTotalPower) {
  WdmSignal s;
  s.add_channel(1310e-9, 1e-3);
  s.add_channel(1312e-9, 2e-3);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_NEAR(s.total_power(), 3e-3, 1e-12);
  EXPECT_THROW(s.add_channel(1310e-9, -1.0), std::invalid_argument);
}

TEST(WdmSignal, ScaleAndMerge) {
  WdmSignal a = WdmSignal::single(1310e-9, 1e-3);
  a.scale(0.5);
  EXPECT_NEAR(a.total_power(), 0.5e-3, 1e-12);
  WdmSignal b = WdmSignal::single(1310e-9, 0.25e-3);
  b.add_channel(1320e-9, 1e-3);
  a.add(b);
  EXPECT_EQ(a.size(), 2u);  // same wavelength merged, new one appended
  EXPECT_NEAR(a.channel(0).power, 0.75e-3, 1e-12);
  EXPECT_THROW(a.scale(-1.0), std::invalid_argument);
}

TEST(CwLaser, WallPlugAccounting) {
  const CwLaser laser(1310e-9, 10e-6, 0.23);
  EXPECT_NEAR(laser.wall_power(), 43.48e-6, 0.01e-6);
  const auto sig = laser.emit();
  EXPECT_EQ(sig.size(), 1u);
  EXPECT_NEAR(sig.total_power(), 10e-6, 1e-15);
  EXPECT_THROW(CwLaser(1310e-9, 1e-3, 0.0), std::invalid_argument);
}

TEST(PulsedLaser, PulseWindowAndEnergy) {
  PulsedLaser laser(1310e-9, 1e-3, 0.23);  // 0 dBm write laser
  laser.schedule_pulse(10e-12, 50e-12);
  EXPECT_DOUBLE_EQ(laser.power_at(5e-12), 0.0);
  EXPECT_DOUBLE_EQ(laser.power_at(30e-12), 1e-3);
  EXPECT_DOUBLE_EQ(laser.power_at(60.1e-12), 0.0);
  // 1 mW x 50 ps = 0.05 pJ optical, ~0.217 pJ wall (the paper's write cost).
  EXPECT_NEAR(laser.scheduled_optical_energy(), 0.05e-12, 1e-18);
  EXPECT_NEAR(laser.scheduled_wall_energy(), 0.2174e-12, 0.001e-12);
  laser.clear();
  EXPECT_DOUBLE_EQ(laser.power_at(30e-12), 0.0);
}

TEST(FrequencyComb, EmitsEqualLines) {
  const FrequencyComb comb(WavelengthGrid::uniform(1310e-9, 2.33e-9, 4), 2e-3);
  const auto sig = comb.emit();
  EXPECT_EQ(sig.size(), 4u);
  EXPECT_NEAR(sig.total_power(), 8e-3, 1e-12);
  EXPECT_NEAR(comb.wall_power(), 8e-3 / 0.23, 1e-6);
}

TEST(IntensityEncoder, EncodesWithLossAndExtinction) {
  const FrequencyComb comb(WavelengthGrid::uniform(1310e-9, 2.33e-9, 2), 1e-3);
  const IntensityEncoder encoder(0.5, 25.0);
  const auto out = encoder.encode(comb.emit(), {1.0, 0.0});
  const double loss = std::pow(10.0, -0.05);
  EXPECT_NEAR(out.channel(0).power, 1e-3 * loss, 1e-9);
  // Fully-off channel leaks at the extinction floor (10^-2.5 ~ 0.316%).
  EXPECT_GT(out.channel(1).power, 0.0);
  EXPECT_NEAR(out.channel(1).power / out.channel(0).power, 0.00316, 0.0005);
  EXPECT_THROW(encoder.encode(comb.emit(), {1.0}), std::invalid_argument);
  EXPECT_THROW(encoder.encode(comb.emit(), {1.0, 2.0}), std::invalid_argument);
}

TEST(PowerSplitter, ConservesPowerMinusExcessLoss) {
  const PowerSplitter splitter(0.5, 0.1);
  const auto [a, b] = splitter.split(WdmSignal::single(1310e-9, 1e-3));
  const double survive = std::pow(10.0, -0.01);
  EXPECT_NEAR(a.total_power() + b.total_power(), 1e-3 * survive, 1e-12);
  EXPECT_NEAR(a.total_power(), b.total_power(), 1e-15);
}

TEST(PowerSplitter, AsymmetricRatio) {
  const PowerSplitter splitter(0.8, 0.0);
  const auto [a, b] = splitter.split(WdmSignal::single(1310e-9, 1.0));
  EXPECT_NEAR(a.total_power(), 0.8, 1e-12);
  EXPECT_NEAR(b.total_power(), 0.2, 1e-12);
  EXPECT_THROW(PowerSplitter(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(PowerSplitter(1.0, 0.0), std::invalid_argument);
}

class SplitterTreeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SplitterTreeSizes, EqualLeavesAndConservation) {
  const std::size_t n = GetParam();
  const SplitterTree tree(n, 0.0);
  const auto leaves = tree.split(WdmSignal::single(1310e-9, 1.0));
  ASSERT_EQ(leaves.size(), n);
  double total = 0.0;
  for (const auto& leaf : leaves) {
    EXPECT_NEAR(leaf.total_power(), 1.0 / static_cast<double>(n), 1e-12);
    total += leaf.total_power();
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Pow2, SplitterTreeSizes,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(SplitterTree, RejectsNonPowerOfTwo) {
  EXPECT_THROW(SplitterTree(3), std::invalid_argument);
  EXPECT_THROW(SplitterTree(0), std::invalid_argument);
}

class BinaryTapCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BinaryTapCounts, BinaryWeightedFractions) {
  const std::size_t n = GetParam();
  const BinaryWeightedTaps taps(n, 0.0);
  const auto out = taps.split(WdmSignal::single(1310e-9, 1.0));
  ASSERT_EQ(out.size(), n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = std::pow(0.5, static_cast<double>(k + 1));
    EXPECT_NEAR(out[k].total_power(), expected, 1e-12);
    total += out[k].total_power();
  }
  // Residual IN / 2^n goes to the absorber.
  EXPECT_NEAR(total + taps.residual_fraction(), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(BitCounts, BinaryTapCounts,
                         ::testing::Values(1, 2, 3, 4, 6));

TEST(Waveguide, LossAndDelay) {
  const Waveguide wg(1e-3, 1.5, 4.0);  // 1 mm at 1.5 dB/cm
  EXPECT_NEAR(wg.transmission(), std::pow(10.0, -0.015), 1e-9);
  EXPECT_NEAR(wg.delay(), 4.0 * 1e-3 / 2.99792458e8, 1e-18);
  const auto out = wg.propagate(WdmSignal::single(1310e-9, 1.0));
  EXPECT_NEAR(out.total_power(), wg.transmission(), 1e-12);
}

TEST(Absorber, AccumulatesAbsorbedPower) {
  Absorber a;
  a.absorb(WdmSignal::single(1310e-9, 1e-3));
  a.absorb(WdmSignal::single(1312e-9, 2e-3));
  EXPECT_NEAR(a.absorbed_power(), 3e-3, 1e-12);
  a.reset();
  EXPECT_DOUBLE_EQ(a.absorbed_power(), 0.0);
}

TEST(DirectionalCoupler, GapMapping) {
  const DirectionalCoupler coupler;
  // Calibration anchors: kappa^2(200 nm) = 0.05.
  EXPECT_NEAR(coupler.power_coupling(200e-9), 0.05, 1e-12);
  // Larger gap -> weaker coupling; monotone.
  EXPECT_LT(coupler.power_coupling(250e-9), coupler.power_coupling(200e-9));
  EXPECT_LT(coupler.power_coupling(300e-9), coupler.power_coupling(250e-9));
  // Tiny gap clamps below 0.95.
  EXPECT_LE(coupler.power_coupling(0.0), 0.95);
  // t^2 + kappa^2 = 1.
  const double t = coupler.self_coupling(220e-9);
  const double k2 = coupler.power_coupling(220e-9);
  EXPECT_NEAR(t * t + k2, 1.0, 1e-12);
}

}  // namespace
