// Multi-tile accelerator runtime: thread pool semantics, tile scheduling,
// and the determinism contract — an N-core Accelerator must reproduce the
// single-core photonic backend bit for bit, because the tile schedule is
// static and the reduction order canonical.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <vector>

#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "core/tensor_core.hpp"
#include "nn/backend.hpp"
#include "nn/mlp.hpp"
#include "nn/tiling.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/backend.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/tile_scheduler.hpp"

namespace {

using namespace ptc;
using namespace ptc::runtime;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughTheFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(257, 0);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForPropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [](std::size_t i) {
                                   if (i == 3) {
                                     throw std::invalid_argument("boom");
                                   }
                                 }),
               std::invalid_argument);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);  // fewer workers than outstanding waits
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 4, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, SingleWorkerStillCompletesParallelFor) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(0, 32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

// ---------------------------------------------------------------------------
// TileScheduler
// ---------------------------------------------------------------------------

nn::TilePlan plan_for(std::size_t samples, std::size_t k, std::size_t m,
                      bool differential = false) {
  Rng rng(5);
  Matrix x = random_activations(samples, k, rng);
  Matrix w = random_signed(k, m, rng);
  return nn::plan_tiled_matmul(x, w, 16, 16, differential);
}

TEST(TileScheduler, EvenWorkloadBalancesPerfectly) {
  // 128x128 weights on 16x16 tiles: 64 equal passes over 8 cores.
  const nn::TilePlan plan = plan_for(4, 128, 128);
  ASSERT_EQ(plan.passes.size(), 64u);
  const Schedule schedule = TileScheduler::assign(plan, 8, {2.4e-9, 8e-9});
  ASSERT_EQ(schedule.shards.size(), 8u);
  std::set<std::size_t> seen;
  for (const CoreShard& shard : schedule.shards) {
    EXPECT_EQ(shard.pass_indices.size(), 8u);
    seen.insert(shard.pass_indices.begin(), shard.pass_indices.end());
  }
  EXPECT_EQ(seen.size(), 64u);  // every pass dispatched exactly once
  EXPECT_DOUBLE_EQ(schedule.makespan(), schedule.total_busy() / 8.0);
}

TEST(TileScheduler, AssignmentIsDeterministic) {
  const nn::TilePlan plan = plan_for(3, 100, 50, true);
  const Schedule a = TileScheduler::assign(plan, 5, {1.0, 2.0});
  const Schedule b = TileScheduler::assign(plan, 5, {1.0, 2.0});
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t c = 0; c < a.shards.size(); ++c) {
    EXPECT_EQ(a.shards[c].pass_indices, b.shards[c].pass_indices);
    EXPECT_DOUBLE_EQ(a.shards[c].busy_time, b.shards[c].busy_time);
  }
}

TEST(TileScheduler, SingleCoreGetsEverything) {
  const nn::TilePlan plan = plan_for(2, 40, 28);
  const Schedule schedule = TileScheduler::assign(plan, 1, {1.0, 1.0});
  ASSERT_EQ(schedule.shards.size(), 1u);
  EXPECT_EQ(schedule.shards[0].pass_indices.size(), plan.passes.size());
  EXPECT_DOUBLE_EQ(schedule.makespan(), schedule.total_busy());
}

// ---------------------------------------------------------------------------
// Accelerator: determinism contract against the single-core backend.
// ---------------------------------------------------------------------------

TEST(Accelerator, BitIdenticalToSingleCorePhotonicBackend) {
  Rng rng(2026);
  const Matrix x = random_activations(5, 40, rng);
  const Matrix w = random_signed(40, 28, rng);

  for (const bool differential : {false, true}) {
    for (const bool quantize : {true, false}) {
      nn::PhotonicBackendOptions options;
      options.differential_weights = differential;
      options.quantize_output = quantize;
      options.adc_range_gain = quantize ? 4.0 : 1.0;

      core::TensorCore single_core;
      nn::PhotonicBackend single(single_core, options);
      const Matrix y_single = single.matmul(x, w);

      Accelerator accelerator({.cores = 3});
      AcceleratorBackend multi(accelerator, options);
      const Matrix y_multi = multi.matmul(x, w);

      ASSERT_EQ(y_multi.rows(), y_single.rows());
      ASSERT_EQ(y_multi.cols(), y_single.cols());
      EXPECT_EQ(y_single.max_abs_diff(y_multi), 0.0)
          << "differential=" << differential << " quantize=" << quantize;

      // The fleet streamed the same number of tiles the single core did.
      EXPECT_EQ(accelerator.stats().tile_loads, single.tile_loads());
    }
  }
}

TEST(Accelerator, MultiBatchStressAcrossEightCores) {
  Rng rng(31337);
  Accelerator accelerator({.cores = 8});
  nn::PhotonicBackendOptions options;  // quantized full-hardware path

  const Matrix w = random_signed(128, 128, rng);
  core::TensorCore single_core;
  nn::PhotonicBackend single(single_core, options);

  for (const std::size_t batch : {1u, 7u, 32u}) {
    const Matrix x = random_activations(batch, 128, rng);
    const Matrix y_multi = accelerator.matmul(x, w, options);
    const Matrix y_single = single.matmul(x, w);
    ASSERT_EQ(y_multi.rows(), batch);
    ASSERT_EQ(y_multi.cols(), 128u);
    EXPECT_EQ(y_single.max_abs_diff(y_multi), 0.0) << "batch " << batch;
  }

  const AcceleratorStats stats = accelerator.stats();
  EXPECT_EQ(stats.cores, 8u);
  EXPECT_EQ(stats.matmuls, 3u);
  EXPECT_EQ(stats.tile_loads, 3u * 64u);
  EXPECT_EQ(stats.samples, 64u * (1u + 7u + 32u));
  EXPECT_GT(stats.makespan, 0.0);
  EXPECT_GT(stats.energy, 0.0);
  EXPECT_GT(stats.fleet_power, 8.0 * 1.0);  // eight ~1.36 W cores
  EXPECT_LE(stats.utilization(), 1.0 + 1e-12);
  // 64 equal passes over 8 cores: the fleet finishes >= 6x faster than the
  // same modeled work serialized on one core (exactly 8x here).
  EXPECT_GE(stats.busy_time / stats.makespan, 6.0);

  double busy_sum = 0.0;
  for (double b : stats.core_busy) busy_sum += b;
  EXPECT_NEAR(busy_sum, stats.busy_time, 1e-15);
}

TEST(Accelerator, ModeledStrongScalingReachesSixTimesAtEightCores) {
  Rng rng(99);
  const Matrix x = random_activations(16, 128, rng);
  const Matrix w = random_signed(128, 128, rng);

  Accelerator one({.cores = 1});
  Accelerator eight({.cores = 8});
  one.matmul(x, w);
  eight.matmul(x, w);

  const double t1 = one.stats().makespan;
  const double t8 = eight.stats().makespan;
  ASSERT_GT(t8, 0.0);
  EXPECT_GE(t1 / t8, 6.0);
  EXPECT_EQ(one.stats().ops, eight.stats().ops);
}

TEST(Accelerator, MlpRunsUnchangedOnTheCorePool) {
  Rng rng(4);
  nn::Mlp mlp(64, 12, 10, rng);
  const Matrix x = random_activations(3, 64, rng);

  nn::PhotonicBackendOptions options;
  options.differential_weights = true;

  core::TensorCore single_core;
  nn::PhotonicBackend single(single_core, options);
  Accelerator accelerator({.cores = 4});
  AcceleratorBackend multi(accelerator, options);

  const Matrix logits_single = mlp.forward(single, x);
  const Matrix logits_multi = mlp.forward(multi, x);
  EXPECT_EQ(logits_single.max_abs_diff(logits_multi), 0.0);
}

TEST(Accelerator, VariationSeedGivesEachDieItsOwnStream) {
  AcceleratorConfig varied;
  varied.cores = 4;
  varied.variation_seed = 99;
  const Accelerator accelerator(varied);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 4; ++i) {
    seeds.insert(accelerator.core(i).config().adc.mismatch_seed);
  }
  EXPECT_EQ(seeds.size(), 4u);  // every die distinct

  // Reproducible: the same variation seed derives the same dies.
  const Accelerator again(varied);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(accelerator.core(i).config().adc.mismatch_seed,
              again.core(i).config().adc.mismatch_seed);
  }

  // Default: all dies identical (the bit-identity precondition).
  const Accelerator uniform({.cores = 3});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(uniform.core(i).config().adc.mismatch_seed,
              core::TensorCoreConfig{}.adc.mismatch_seed);
  }
}

TEST(Accelerator, StatsResetClearsCounters) {
  Rng rng(8);
  Accelerator accelerator({.cores = 2});
  accelerator.matmul(random_activations(2, 20, rng),
                     random_signed(20, 20, rng));
  EXPECT_GT(accelerator.stats().matmuls, 0u);
  accelerator.reset_stats();
  const AcceleratorStats stats = accelerator.stats();
  EXPECT_EQ(stats.matmuls, 0u);
  EXPECT_EQ(stats.tile_loads, 0u);
  EXPECT_DOUBLE_EQ(stats.makespan, 0.0);
  EXPECT_EQ(stats.cores, 2u);
}

TEST(Accelerator, RejectsBadConfiguration) {
  EXPECT_THROW(Accelerator({.cores = 0}), std::invalid_argument);
  Accelerator accelerator({.cores = 2});
  EXPECT_THROW(accelerator.core(2), std::invalid_argument);
  Rng rng(1);
  const Matrix x = random_activations(2, 10, rng);
  const Matrix w = random_signed(12, 8, rng);  // inner mismatch
  EXPECT_THROW(accelerator.matmul(x, w), std::invalid_argument);
}

}  // namespace
