// Hard-fault model and fault-tolerant scheduling: seeded device faults
// (dead rings, stuck heaters, dead ADC ladders, pSRAM endurance wear-out)
// keep the fast path bit-identical to the physics oracle; the self-test
// classifies core health; FAILED-core eviction remaps the tile schedule
// bit-identically to a healthy fleet of the surviving size; and the serve
// loop replays fault schedules deterministically on modeled time, billing
// every self-test to the (fleet) attribution row.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "core/fault.hpp"
#include "core/tensor_core.hpp"
#include "nn/backend.hpp"
#include "nn/mlp.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/fault.hpp"
#include "serve/batcher.hpp"
#include "serve/load_generator.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"

namespace {

using namespace ptc;
using core::FaultModel;
using core::RingFaultKind;
using core::RingFaultSite;
using runtime::Accelerator;
using runtime::AcceleratorConfig;
using runtime::CoreHealth;
using runtime::FaultEvent;

// ---------------------------------------------------------------------------
// core::FaultModel
// ---------------------------------------------------------------------------

TEST(FaultModel, SampledRingSitesAreDistinctInBoundsAndSeeded) {
  const std::size_t rows = 16, cols = 16;
  const unsigned bits = 6;
  const std::vector<RingFaultSite> sites =
      FaultModel::sample_ring_faults(rows, cols, bits, 24, 905);
  ASSERT_EQ(sites.size(), 24u);
  std::set<std::tuple<std::size_t, std::size_t, unsigned>> seen;
  std::size_t stuck_on = 0;
  for (const RingFaultSite& site : sites) {
    EXPECT_LT(site.row, rows);
    EXPECT_LT(site.col, cols);
    EXPECT_LT(site.bit, bits);
    EXPECT_NE(site.kind, RingFaultKind::kNone);
    if (site.kind == RingFaultKind::kStuckOn) ++stuck_on;
    seen.insert({site.row, site.col, site.bit});
  }
  EXPECT_EQ(seen.size(), sites.size());  // no ring faulted twice
  // The sampler alternates stuck-ON / stuck-OFF so a cluster corrupts in
  // both directions.
  EXPECT_EQ(stuck_on, 12u);

  // Pure function of the arguments; a different seed lands elsewhere.
  const std::vector<RingFaultSite> again =
      FaultModel::sample_ring_faults(rows, cols, bits, 24, 905);
  ASSERT_EQ(again.size(), sites.size());
  bool identical = true;
  bool differs_from_other_seed = false;
  const std::vector<RingFaultSite> other =
      FaultModel::sample_ring_faults(rows, cols, bits, 24, 906);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    identical = identical && again[i].row == sites[i].row &&
                again[i].col == sites[i].col && again[i].bit == sites[i].bit &&
                again[i].kind == sites[i].kind;
    differs_from_other_seed =
        differs_from_other_seed || other[i].row != sites[i].row ||
        other[i].col != sites[i].col || other[i].bit != sites[i].bit;
  }
  EXPECT_TRUE(identical);
  EXPECT_TRUE(differs_from_other_seed);
}

// ---------------------------------------------------------------------------
// core::TensorCore under injected faults
// ---------------------------------------------------------------------------

core::TensorCoreConfig core_config(bool fast_path) {
  core::TensorCoreConfig config;
  config.fast_path = fast_path;
  return config;
}

TEST(CoreFaults, FastPathBitIdenticalToPhysicsUnderAnyFaultSet) {
  // Faults land at the ring-bias level and re-freeze the calibration memo,
  // so the calibrated fast path and the spectral physics walk must stay
  // bit-identical under dead rings and dead ADC ladders alike.
  Rng rng(404);
  const Matrix x = random_activations(6, 16, rng);
  const Matrix w = random_signed(16, 16, rng);

  core::TensorCore fast_core(core_config(true));
  core::TensorCore physics_core(core_config(false));
  const std::vector<RingFaultSite> sites = FaultModel::sample_ring_faults(
      fast_core.rows(), fast_core.cols(), fast_core.weight_bits(), 12, 7);
  fast_core.inject_ring_faults(sites);
  physics_core.inject_ring_faults(sites);
  fast_core.inject_adc_fault(3);
  physics_core.inject_adc_fault(3);

  nn::PhotonicBackendOptions options;  // quantized full-hardware path
  nn::PhotonicBackend fast(fast_core, options);
  nn::PhotonicBackend physics(physics_core, options);
  const Matrix y_fast = fast.matmul(x, w);
  EXPECT_EQ(y_fast.max_abs_diff(physics.matmul(x, w)), 0.0);
  EXPECT_TRUE(fast_core.fast_path_active());

  // The faults corrupt the result: a clean pair of cores disagrees.
  core::TensorCore clean_core(core_config(true));
  nn::PhotonicBackend clean(clean_core, options);
  EXPECT_GT(y_fast.max_abs_diff(clean.matmul(x, w)), 0.0);
}

TEST(CoreFaults, StuckHeaterFreezesDetuningUntilCleared) {
  core::TensorCore core(core_config(true));
  core.set_thermal_detuning(0.3);
  core.inject_stuck_heater();
  EXPECT_TRUE(core.heater_stuck());
  core.set_thermal_detuning(0.0);  // servo has no authority
  EXPECT_DOUBLE_EQ(core.thermal_detuning(), 0.3);
  core.recalibrate();  // re-lock is ignored too
  EXPECT_DOUBLE_EQ(core.thermal_detuning(), 0.3);

  core.clear_faults();
  EXPECT_FALSE(core.heater_stuck());
  core.set_thermal_detuning(0.0);
  EXPECT_DOUBLE_EQ(core.thermal_detuning(), 0.0);
}

TEST(CoreFaults, AdcFaultAndDeadRingsShowUpInTheSelfTest) {
  core::TensorCore core(core_config(true));
  const core::TensorCore::SelfTestResult healthy = core.self_test(8, 2026);
  EXPECT_EQ(healthy.stuck_adc_rows, 0u);
  EXPECT_TRUE(healthy.heater_locked);
  EXPECT_DOUBLE_EQ(healthy.endurance_remaining, 1.0);

  core.inject_adc_fault(5);
  EXPECT_TRUE(core.adc_faulted(5));
  EXPECT_EQ(core.adc_fault_count(), 1u);
  const core::TensorCore::SelfTestResult sick = core.self_test(8, 2026);
  EXPECT_EQ(sick.stuck_adc_rows, 1u);

  core.inject_ring_faults(FaultModel::sample_ring_faults(
      core.rows(), core.cols(), core.weight_bits(), 64, 11));
  EXPECT_EQ(core.ring_fault_count(), 64u);
  const core::TensorCore::SelfTestResult corrupted = core.self_test(8, 2026);
  EXPECT_GT(corrupted.max_row_error, sick.max_row_error);

  core.clear_faults();
  EXPECT_EQ(core.ring_fault_count(), 0u);
  EXPECT_EQ(core.adc_fault_count(), 0u);
}

TEST(CoreFaults, EnduranceWearOutIsPhysicalAndPersistsClearFaults) {
  core::TensorCoreConfig config = core_config(true);
  config.fault.seed = 77;
  config.fault.psram_endurance_median = 6.0;  // cells die within a few loads
  config.fault.psram_endurance_spread = 0.25;
  core::TensorCore core(config);
  ASSERT_TRUE(core.psram().endurance_enabled());
  EXPECT_DOUBLE_EQ(core.psram().endurance_remaining(), 1.0);

  Rng rng(5);
  for (int i = 0; i < 24; ++i) {
    // Alternating random patterns keep flipping bits against the budget.
    core.load_weights_normalized(
        random_activations(core.rows(), core.cols(), rng));
  }
  EXPECT_LT(core.psram().endurance_remaining(), 1.0);
  EXPECT_GT(core.psram().write_errors(), 0u);
  const core::TensorCore::SelfTestResult worn = core.self_test(8, 2026);
  EXPECT_GT(worn.psram_failed_cells, 0u);
  EXPECT_LT(worn.endurance_remaining, 1.0);

  // clear_faults releases injected faults only — wear is physical damage.
  const std::uint64_t errors_before = core.psram().write_errors();
  core.clear_faults();
  EXPECT_EQ(core.psram().write_errors(), errors_before);
  EXPECT_LT(core.psram().endurance_remaining(), 1.0);
}

// ---------------------------------------------------------------------------
// runtime::Accelerator: fault registry, self-test, eviction
// ---------------------------------------------------------------------------

TEST(FaultRegistry, SelfTestClassifiesInjectedFaults) {
  Accelerator accelerator({.cores = 4});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(accelerator.core_health(i), CoreHealth::kOk);
    EXPECT_FALSE(accelerator.core_evicted(i));
  }
  EXPECT_EQ(accelerator.run_self_test(0), CoreHealth::kOk);
  EXPECT_GT(accelerator.self_test_cost().latency, 0.0);

  // A 64-ring cluster corrupts well past the fail bar.
  accelerator.inject({.core = 1, .kind = FaultEvent::Kind::kDeadRings,
                      .count = 64, .seed = 3});
  EXPECT_EQ(accelerator.run_self_test(1), CoreHealth::kFailed);
  EXPECT_EQ(accelerator.core_health(1), CoreHealth::kFailed);

  // A stuck heater cannot re-lock: FAILED regardless of the current error.
  accelerator.inject({.core = 2, .kind = FaultEvent::Kind::kStuckHeater});
  EXPECT_EQ(accelerator.run_self_test(2), CoreHealth::kFailed);

  // One dead ADC ladder zeroes a full output row.
  accelerator.inject({.core = 3, .kind = FaultEvent::Kind::kAdcLadder,
                      .row = 4});
  EXPECT_EQ(accelerator.run_self_test(3), CoreHealth::kFailed);

  EXPECT_EQ(accelerator.faults_injected(), 3u);

  // Field repair: CLEAR + re-test heals each core back to OK.
  for (std::size_t i = 1; i < 4; ++i) {
    accelerator.inject({.core = i, .kind = FaultEvent::Kind::kClear});
    EXPECT_EQ(accelerator.run_self_test(i), CoreHealth::kOk) << i;
  }
  EXPECT_EQ(accelerator.faults_injected(), 3u);  // repairs are not faults
}

TEST(FaultRegistry, EvictedFleetIsBitIdenticalToHealthyFleetOfSurvivingSize) {
  Rng rng(77);
  const Matrix x = random_activations(9, 48, rng);
  const Matrix w = random_signed(48, 32, rng);
  nn::PhotonicBackendOptions options;

  // Uniform dies: evicting any one core must reproduce a 3-core fleet.
  Accelerator faulted({.cores = 4});
  faulted.inject({.core = 1, .kind = FaultEvent::Kind::kDeadRings,
                  .count = 64, .seed = 9});
  ASSERT_EQ(faulted.run_self_test(1), CoreHealth::kFailed);
  faulted.evict_core(1);
  EXPECT_EQ(faulted.active_core_count(), 3u);
  EXPECT_EQ(faulted.evicted_count(), 1u);

  Accelerator healthy({.cores = 3});
  EXPECT_EQ(faulted.matmul(x, w, options).max_abs_diff(
                healthy.matmul(x, w, options)),
            0.0);
  // Modeled cost too: the schedule really is a 3-core schedule.
  const runtime::BatchCost faulted_cost = faulted.batch_cost(6, 2, 16);
  const runtime::BatchCost healthy_cost = healthy.batch_cost(6, 2, 16);
  EXPECT_DOUBLE_EQ(faulted_cost.latency, healthy_cost.latency);
  EXPECT_DOUBLE_EQ(faulted_cost.busy, healthy_cost.busy);
  EXPECT_EQ(faulted_cost.reloads, healthy_cost.reloads);

  // Variation-aware dies: core i is the same die at any fleet size, so
  // evicting the tail cores reproduces the smaller variation fleet.
  AcceleratorConfig varied;
  varied.cores = 4;
  varied.variation.seed = 42;
  Accelerator tail_evicted(varied);
  tail_evicted.inject({.core = 3, .kind = FaultEvent::Kind::kStuckHeater});
  ASSERT_EQ(tail_evicted.run_self_test(3), CoreHealth::kFailed);
  tail_evicted.evict_core(3);

  AcceleratorConfig smaller = varied;
  smaller.cores = 3;
  Accelerator varied_healthy(smaller);
  EXPECT_EQ(tail_evicted.matmul(x, w, options).max_abs_diff(
                varied_healthy.matmul(x, w, options)),
            0.0);
}

TEST(FaultRegistry, RecalibrateSkipsFailedCoresAndRelocksTheRest) {
  Accelerator accelerator({.cores = 4});
  // Freeze core 2 off lock, then detune the others by hand.
  accelerator.core(2).set_thermal_detuning(0.4);
  accelerator.inject({.core = 2, .kind = FaultEvent::Kind::kStuckHeater});
  ASSERT_EQ(accelerator.run_self_test(2), CoreHealth::kFailed);
  for (const std::size_t i : {0u, 1u, 3u}) {
    accelerator.core(i).set_thermal_detuning(0.2);
  }

  const runtime::BatchCost downtime = accelerator.recalibrate();
  EXPECT_GT(downtime.latency, 0.0);
  for (const std::size_t i : {0u, 1u, 3u}) {
    EXPECT_DOUBLE_EQ(accelerator.core(i).thermal_detuning(), 0.0) << i;
  }
  // The FAILED core was skipped: its frozen detuning is untouched.
  EXPECT_DOUBLE_EQ(accelerator.core(2).thermal_detuning(), 0.4);

  // A fleet whose every active core is FAILED has nothing to re-lock.
  Accelerator dead({.cores = 2});
  dead.inject({.core = 0, .kind = FaultEvent::Kind::kStuckHeater});
  dead.inject({.core = 1, .kind = FaultEvent::Kind::kStuckHeater});
  ASSERT_EQ(dead.run_self_test(0), CoreHealth::kFailed);
  ASSERT_EQ(dead.run_self_test(1), CoreHealth::kFailed);
  const runtime::BatchCost none = dead.recalibrate();
  EXPECT_DOUBLE_EQ(none.latency, 0.0);
  EXPECT_EQ(none.reloads, 0u);
}

TEST(FaultRegistry, EvictionGuardsAndResetFaults) {
  Accelerator accelerator({.cores = 2});
  EXPECT_THROW(accelerator.evict_core(7), std::invalid_argument);
  accelerator.evict_core(0);
  EXPECT_THROW(accelerator.evict_core(0), std::invalid_argument);  // twice
  EXPECT_THROW(accelerator.evict_core(1), std::invalid_argument);  // last one
  EXPECT_THROW(accelerator.readmit_core(1), std::invalid_argument);
  accelerator.readmit_core(0);
  EXPECT_EQ(accelerator.active_core_count(), 2u);

  accelerator.inject({.core = 1, .kind = FaultEvent::Kind::kDeadRings,
                      .count = 64, .seed = 5});
  accelerator.run_self_test(1);
  accelerator.evict_core(1);
  accelerator.reset_faults();
  EXPECT_EQ(accelerator.active_core_count(), 2u);
  EXPECT_EQ(accelerator.core_health(1), CoreHealth::kOk);
  EXPECT_EQ(accelerator.faults_injected(), 0u);
  EXPECT_EQ(accelerator.core(1).ring_fault_count(), 0u);
}

// ---------------------------------------------------------------------------
// runtime::poisson_fault_schedule
// ---------------------------------------------------------------------------

TEST(PoissonFaults, ScheduleIsDeterministicSortedAndRateScaled) {
  const std::vector<FaultEvent> schedule =
      runtime::poisson_fault_schedule(6e6, 2.0e-6, 8, 905);
  EXPECT_GT(schedule.size(), 4u);  // ~12 expected events
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].time, 0.0);
    EXPECT_LT(schedule[i].time, 2.0e-6);
    EXPECT_LT(schedule[i].core, 8u);
    EXPECT_NE(schedule[i].kind, FaultEvent::Kind::kClear);
    if (i > 0) {
      EXPECT_GE(schedule[i].time, schedule[i - 1].time);
    }
  }

  const std::vector<FaultEvent> again =
      runtime::poisson_fault_schedule(6e6, 2.0e-6, 8, 905);
  ASSERT_EQ(again.size(), schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].time, schedule[i].time);
    EXPECT_EQ(again[i].core, schedule[i].core);
    EXPECT_EQ(again[i].kind, schedule[i].kind);
  }

  EXPECT_TRUE(runtime::poisson_fault_schedule(0.0, 2.0e-6, 8, 905).empty());
  EXPECT_GT(runtime::poisson_fault_schedule(20e6, 2.0e-6, 8, 905).size(),
            schedule.size());
}

TEST(PoissonFaults, AdcRowIsDrawnPerEventNotPinnedToRowZero) {
  // Regression: the generator used to leave every ADC-ladder strike on the
  // default row 0.  Rows must now be seeded draws — in range, spread
  // across the ladder, and reproducible.
  const std::vector<FaultEvent> schedule =
      runtime::poisson_fault_schedule(40e6, 4.0e-6, 8, 905, 16);
  std::size_t adc_events = 0;
  std::vector<std::size_t> row_hits(16, 0);
  for (const FaultEvent& event : schedule) {
    EXPECT_LT(event.row, 16u);
    if (event.kind == FaultEvent::Kind::kAdcLadder) {
      ++adc_events;
      ++row_hits[event.row];
    }
  }
  ASSERT_GT(adc_events, 8u);  // ~40 expected ADC strikes at this rate

  // Uniform draws over 16 rows cannot concentrate: row 0 is no longer a
  // sink, and the strikes touch a healthy fraction of the ladder.
  EXPECT_LT(row_hits[0], adc_events);
  std::size_t distinct_rows = 0;
  for (const std::size_t hits : row_hits) distinct_rows += hits > 0 ? 1 : 0;
  EXPECT_GE(distinct_rows, 6u);

  // Seeded: the row sequence is part of the deterministic stream.
  const std::vector<FaultEvent> again =
      runtime::poisson_fault_schedule(40e6, 4.0e-6, 8, 905, 16);
  ASSERT_EQ(again.size(), schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(again[i].row, schedule[i].row);
  }

  // A different ladder geometry stays in range too.
  for (const FaultEvent& event :
       runtime::poisson_fault_schedule(40e6, 2.0e-6, 8, 905, 4)) {
    EXPECT_LT(event.row, 4u);
  }
  EXPECT_THROW(runtime::poisson_fault_schedule(1e6, 1e-6, 8, 905, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// serve::Server: fault replay, billing, shedding, determinism
// ---------------------------------------------------------------------------

serve::ServeReport run_fault_scenario(
    std::size_t threads, const serve::BatchPolicy& policy,
    const std::vector<FaultEvent>& schedule) {
  AcceleratorConfig config;
  config.cores = 4;
  config.threads = threads;
  config.core.weight_bits = 6;
  config.variation.seed = 42;
  Accelerator accelerator(config);
  nn::PhotonicBackendOptions options;
  options.quantize_output = false;
  options.differential_weights = true;
  serve::ModelRegistry registry(accelerator, options);
  Rng rng(7);
  registry.add("mlp", nn::Mlp(32, 16, 10, rng));
  serve::Server server(registry);
  server.set_fault_schedule(schedule);
  const serve::LoadGenerator generator(
      {{.name = "t", .model = "mlp", .rate = 100e6, .requests = 96}}, 1234);
  return server.run(generator.generate(registry), policy);
}

TEST(ServerFaults, ReplayEvictsBillsTheFleetRowAndReadmitsOnRepair) {
  // One early hard fault, one late field repair: the run must evict the
  // FAILED core, bill both self-tests as fleet downtime, and readmit the
  // repaired core into the rotation.
  const std::vector<FaultEvent> schedule = {
      {.time = 5e-9, .core = 1, .kind = FaultEvent::Kind::kDeadRings,
       .count = 64, .seed = 3},
      {.time = 600e-9, .core = 1, .kind = FaultEvent::Kind::kClear},
  };
  const serve::BatchPolicy policy{.max_batch = 8, .max_wait = 20e-9,
                                  .evict_on_fault = true,
                                  .recalibrate_on_fault = true};
  const serve::ServeReport report = run_fault_scenario(1, policy, schedule);

  EXPECT_EQ(report.faults, 1u);  // the CLEAR repair is not a fault
  EXPECT_EQ(report.core_evictions, 1u);
  EXPECT_EQ(report.core_readmissions, 1u);
  EXPECT_GT(report.fault_time, 0.0);
  EXPECT_EQ(report.completed, 96u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_DOUBLE_EQ(report.availability(), 1.0);

  // Fault downtime is billed to the (fleet) attribution row and only
  // there, so the report totals conserve over the tenant decomposition.
  std::size_t fault_rows = 0;
  for (const serve::TenantCost& row : report.tenant_costs) {
    if (row.faults > 0 || row.fault_seconds > 0.0) {
      ++fault_rows;
      EXPECT_EQ(row.tenant, serve::TenantCost::kFleetTenant);
      EXPECT_EQ(row.faults, report.faults);
      EXPECT_DOUBLE_EQ(row.fault_seconds, report.fault_time);
    }
  }
  EXPECT_EQ(fault_rows, 1u);
}

TEST(ServerFaults, NoMitigationKeepsTheFailedCoreAndLosesAccuracy) {
  const std::vector<FaultEvent> schedule = {
      {.time = 5e-9, .core = 1, .kind = FaultEvent::Kind::kDeadRings,
       .count = 64, .seed = 3},
  };
  const serve::BatchPolicy plain{.max_batch = 8, .max_wait = 20e-9};
  const serve::BatchPolicy evict{.max_batch = 8, .max_wait = 20e-9,
                                 .evict_on_fault = true,
                                 .recalibrate_on_fault = true};
  const serve::ServeReport corrupted = run_fault_scenario(1, plain, schedule);
  const serve::ServeReport healthy =
      run_fault_scenario(1, evict, schedule);
  EXPECT_EQ(corrupted.core_evictions, 0u);
  EXPECT_EQ(healthy.core_evictions, 1u);
  ASSERT_TRUE(corrupted.accuracy_scored);
  EXPECT_GT(healthy.accuracy(), corrupted.accuracy());
}

TEST(ServerFaults, DegradedCapacitySheddingCountsPerTenant) {
  // A tight degraded-queue limit on an early-faulted fleet must shed, and
  // the shed tally must decompose exactly over the tenant rows.
  const std::vector<FaultEvent> schedule = {
      {.time = 1e-9, .core = 0, .kind = FaultEvent::Kind::kDeadRings,
       .count = 64, .seed = 3},
  };
  const serve::BatchPolicy policy{.max_batch = 8, .max_wait = 20e-9,
                                  .evict_on_fault = true,
                                  .recalibrate_on_fault = true,
                                  .degraded_queue_limit = 1};
  const serve::ServeReport report = run_fault_scenario(1, policy, schedule);
  EXPECT_GT(report.shed, 0u);
  EXPECT_EQ(report.completed + report.shed, 96u);
  EXPECT_LT(report.availability(), 1.0);
  EXPECT_DOUBLE_EQ(report.availability(),
                   static_cast<double>(report.completed) /
                       static_cast<double>(report.completed + report.shed));
  std::size_t shed_sum = 0;
  for (const serve::TenantCost& row : report.tenant_costs) {
    shed_sum += row.shed_requests;
  }
  EXPECT_EQ(shed_sum, report.shed);
}

TEST(ServerFaults, AvailabilityIsOneWhenNothingWasOffered) {
  const serve::ServeReport empty;
  EXPECT_DOUBLE_EQ(empty.availability(), 1.0);
}

TEST(ServerFaults, FaultRunsAreBitIdenticalAcrossHostThreadCounts) {
  // Same seed + same schedule => byte-identical ServeReport, on any host
  // thread count, and reproducible within one process (the attached
  // schedule resets fault state at every run start).
  const std::vector<FaultEvent> schedule = runtime::poisson_fault_schedule(
      4e6, 1.0e-6, 4, 905);
  ASSERT_FALSE(schedule.empty());
  std::vector<FaultEvent> bumped = schedule;
  for (FaultEvent& event : bumped) {
    if (event.kind == FaultEvent::Kind::kDeadRings) event.count = 64;
  }
  const serve::BatchPolicy policy{.max_batch = 8, .max_wait = 20e-9,
                                  .evict_on_fault = true,
                                  .recalibrate_on_fault = true,
                                  .degraded_queue_limit = 4};
  const serve::ServeReport r1 = run_fault_scenario(1, policy, bumped);
  EXPECT_GT(r1.faults, 0u);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const serve::ServeReport r = run_fault_scenario(threads, policy, bumped);
    EXPECT_EQ(r.completed, r1.completed) << threads;
    EXPECT_EQ(r.faults, r1.faults) << threads;
    EXPECT_EQ(r.core_evictions, r1.core_evictions) << threads;
    EXPECT_EQ(r.core_readmissions, r1.core_readmissions) << threads;
    EXPECT_EQ(r.shed, r1.shed) << threads;
    EXPECT_EQ(r.reference_matches, r1.reference_matches) << threads;
    // Bitwise, not approximate: memcmp on the doubles.
    EXPECT_EQ(std::memcmp(&r.makespan, &r1.makespan, sizeof(double)), 0)
        << threads;
    EXPECT_EQ(std::memcmp(&r.fault_time, &r1.fault_time, sizeof(double)), 0)
        << threads;
    EXPECT_EQ(std::memcmp(&r.energy, &r1.energy, sizeof(double)), 0)
        << threads;
  }
}

TEST(ServerFaults, ScheduleMustBeSortedByTime) {
  AcceleratorConfig config;
  config.cores = 2;
  Accelerator accelerator(config);
  serve::ModelRegistry registry(accelerator);
  Rng rng(7);
  registry.add("m", nn::Mlp(16, 8, 4, rng));
  serve::Server server(registry);
  EXPECT_THROW(server.set_fault_schedule(
                   {{.time = 2e-9, .core = 0},
                    {.time = 1e-9, .core = 1}}),
               std::invalid_argument);
}

}  // namespace
