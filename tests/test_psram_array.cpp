#include <gtest/gtest.h>

#include "core/psram_array.hpp"

namespace {

using namespace ptc::core;

TEST(PsramArray, PaperGeometry768Bitcells) {
  const PsramArray array;  // 16 x 16 x 3 bits
  EXPECT_EQ(array.rows(), 16u);
  EXPECT_EQ(array.words_per_row(), 16u);
  EXPECT_EQ(array.bits_per_word(), 3u);
  EXPECT_EQ(array.bitcell_count(), 768u);
  EXPECT_EQ(array.max_weight(), 7u);
}

TEST(PsramArray, WordReadBack) {
  PsramArray array;
  array.write_word(3, 5, 6);
  EXPECT_EQ(array.word(3, 5), 6u);
  EXPECT_EQ(array.word(3, 6), 0u);
  EXPECT_TRUE(array.bit(3, 5, 1));   // 6 = 0b110
  EXPECT_TRUE(array.bit(3, 5, 2));
  EXPECT_FALSE(array.bit(3, 5, 0));
}

TEST(PsramArray, WriteEnergyCountsOnlyFlippedBits) {
  PsramArray array;
  // 0 -> 7 flips 3 bits.
  EXPECT_EQ(array.write_word(0, 0, 7), 3u);
  const double after_first = array.ledger().energy("psram_write");
  EXPECT_NEAR(after_first, 3 * 0.493e-12, 1e-15);
  // 7 -> 7 flips nothing.
  EXPECT_EQ(array.write_word(0, 0, 7), 0u);
  EXPECT_NEAR(array.ledger().energy("psram_write"), after_first, 1e-18);
  // 7 -> 6 flips one bit.
  EXPECT_EQ(array.write_word(0, 0, 6), 1u);
}

TEST(PsramArray, MatrixReloadLatencyAt20GHz) {
  PsramArray array;
  std::vector<std::uint32_t> values(16 * 16, 5);
  const double latency = array.write_matrix(values);
  // 16 words x 3 bits per row at 20 GHz = 2.4 ns (rows in parallel).
  EXPECT_NEAR(latency * 1e9, 2.4, 1e-9);
  EXPECT_EQ(array.word(15, 15), 5u);
}

TEST(PsramArray, WordWriteTime) {
  const PsramArray array;
  EXPECT_NEAR(array.word_write_time() * 1e12, 150.0, 1e-6);  // 3 x 50 ps
}

TEST(PsramArray, HoldWallPowerScalesWithCells) {
  const PsramArray array;
  // 768 cells x 10 uW / 0.23 = 33.4 mW.
  EXPECT_NEAR(array.hold_wall_power() * 1e3, 33.4, 0.1);
}

TEST(PsramArray, CustomGeometry) {
  PsramArrayConfig config;
  config.rows = 4;
  config.words_per_row = 8;
  config.bits_per_word = 5;
  PsramArray array(config);
  EXPECT_EQ(array.bitcell_count(), 160u);
  EXPECT_EQ(array.max_weight(), 31u);
  array.write_word(3, 7, 31);
  EXPECT_EQ(array.word(3, 7), 31u);
}

TEST(PsramArray, RejectsOutOfRange) {
  PsramArray array;
  EXPECT_THROW(array.write_word(16, 0, 1), std::invalid_argument);
  EXPECT_THROW(array.write_word(0, 16, 1), std::invalid_argument);
  EXPECT_THROW(array.write_word(0, 0, 8), std::invalid_argument);
  EXPECT_THROW(array.bit(0, 0, 3), std::invalid_argument);
  EXPECT_THROW(array.write_matrix(std::vector<std::uint32_t>(5)),
               std::invalid_argument);
}

}  // namespace
