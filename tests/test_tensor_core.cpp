#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/tensor_core.hpp"

namespace {

using namespace ptc;
using namespace ptc::core;

TensorCoreConfig small_config(std::size_t rows, std::size_t cols) {
  TensorCoreConfig config;
  config.rows = rows;
  config.cols = cols;
  return config;
}

TEST(TensorCore, PaperGeometry) {
  const TensorCore core;
  EXPECT_EQ(core.rows(), 16u);
  EXPECT_EQ(core.cols(), 16u);
  EXPECT_EQ(core.weight_bits(), 3u);
  EXPECT_EQ(core.bitcell_count(), 768u);  // paper Sec. IV-D
  EXPECT_EQ(core.macros_per_row(), 4u);   // four 1x4 macros per row
}

TEST(TensorCore, ThroughputMatchesPaper) {
  const TensorCore core;
  EXPECT_DOUBLE_EQ(core.ops_per_sample(), 512.0);  // 16 x (16 mul + 16 add)
  EXPECT_NEAR(core.throughput_ops() / 1e12, 4.10, 0.01);  // 4.10 TOPS
}

TEST(TensorCore, PowerEfficiencyMatchesPaper) {
  const TensorCore core;
  EXPECT_NEAR(core.power(), 1.356, 0.015);             // ~1.36 W
  EXPECT_NEAR(core.tops_per_watt() / 1e12, 3.02, 0.03);  // 3.02 TOPS/W
}

TEST(TensorCore, PowerBreakdownSumsToTotal) {
  const TensorCore core;
  const auto b = core.breakdown();
  EXPECT_NEAR(b.total(), core.power(), 1e-12);
  EXPECT_GT(b.adc, 0.25);       // 16 eoADCs dominate ~297 mW
  EXPECT_GT(b.row_tia, 0.5);    // readout TIAs ~608 mW
  EXPECT_GT(b.psram_hold, 0.03);
  EXPECT_GT(b.comb_laser, 0.1);
}

TEST(TensorCore, WeightUpdateRate20GHz) {
  const TensorCore core;
  EXPECT_DOUBLE_EQ(core.weight_update_rate(), 20e9);
}

TEST(TensorCore, LoadWeightsReloadLatency) {
  TensorCore core;
  std::vector<std::vector<std::uint32_t>> w(
      16, std::vector<std::uint32_t>(16, 5));
  const double latency = core.load_weights(w);
  EXPECT_NEAR(latency * 1e9, 2.4, 1e-9);  // 16 words x 3 bits / 20 GHz
  EXPECT_EQ(core.psram().word(7, 7), 5u);
}

TEST(TensorCore, MultiplyMatchesDigitalReferenceWithinOneLsb) {
  TensorCore core;
  Rng rng(77);
  std::vector<std::vector<std::uint32_t>> w(16,
                                            std::vector<std::uint32_t>(16));
  for (auto& row : w)
    for (auto& v : row) v = static_cast<std::uint32_t>(rng.below(8));
  core.load_weights(w);

  std::vector<double> input(16);
  for (auto& v : input) v = rng.uniform();

  const auto codes = core.multiply(input);
  const auto reference = core.reference(input);
  for (std::size_t r = 0; r < 16; ++r) {
    // reference() is normalized to [0, 1]; the 3-bit ADC spans that range
    // with 8 bins, so the ideal (unquantized) code value is reference * 8.
    const double ideal = reference[r] * 8.0;
    EXPECT_NEAR(static_cast<double>(codes[r]), ideal, 1.1) << "row " << r;
  }
}

class RandomMatmuls : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMatmuls, AnalogRowValuesTrackReference) {
  TensorCore core;
  Rng rng(GetParam());
  std::vector<std::vector<std::uint32_t>> w(16,
                                            std::vector<std::uint32_t>(16));
  for (auto& row : w)
    for (auto& v : row) v = static_cast<std::uint32_t>(rng.below(8));
  core.load_weights(w);
  std::vector<double> input(16);
  for (auto& v : input) v = rng.uniform();

  const auto analog = core.multiply_analog(input);
  const auto reference = core.reference(input);
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_NEAR(analog[r], reference[r], 0.02) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMatmuls,
                         ::testing::Values(1, 2, 3, 11, 29));

TEST(TensorCore, NormalizedWeightLoadingQuantizes) {
  TensorCore core;
  Matrix w(16, 16, 0.0);
  w(0, 0) = 1.0;    // -> 7
  w(0, 1) = 0.5;    // -> 4 (round(3.5))
  w(0, 2) = 0.1;    // -> 1
  core.load_weights_normalized(w);
  EXPECT_EQ(core.psram().word(0, 0), 7u);
  EXPECT_EQ(core.psram().word(0, 1), 4u);
  EXPECT_EQ(core.psram().word(0, 2), 1u);
}

TEST(TensorCore, BatchMultiplyShapes) {
  TensorCore core;
  std::vector<std::vector<std::uint32_t>> w(
      16, std::vector<std::uint32_t>(16, 7));
  core.load_weights(w);
  Matrix inputs(3, 16, 0.5);
  const Matrix out = core.multiply_batch(inputs);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 16u);
  // Uniform weights and inputs: every output is identical and mid-scale.
  for (std::size_t s = 0; s < 3; ++s)
    for (std::size_t r = 0; r < 16; ++r) EXPECT_NEAR(out(s, r), 0.5, 0.15);
}

TEST(TensorCore, LedgerAccruesPerSample) {
  TensorCore core;
  std::vector<std::vector<std::uint32_t>> w(
      16, std::vector<std::uint32_t>(16, 3));
  core.load_weights(w);
  const double before = core.ledger().total_energy();
  core.multiply(std::vector<double>(16, 0.5));
  core.multiply(std::vector<double>(16, 0.5));
  const double after = core.ledger().total_energy();
  EXPECT_EQ(core.samples_processed(), 2u);
  // Two 125 ps windows of ~1.36 W: ~0.34 nJ.
  EXPECT_NEAR((after - before) * 1e9, 0.339, 0.02);
}

TEST(TensorCore, SmallerGeometriesWork) {
  TensorCore core(small_config(4, 4));
  EXPECT_EQ(core.bitcell_count(), 48u);
  std::vector<std::vector<std::uint32_t>> w(4, std::vector<std::uint32_t>(4, 7));
  core.load_weights(w);
  const auto codes = core.multiply({1.0, 1.0, 1.0, 1.0});
  ASSERT_EQ(codes.size(), 4u);
  for (unsigned c : codes) EXPECT_EQ(c, 7u);  // full scale everywhere
}

TEST(TensorCore, EightByEightThroughputScales) {
  const TensorCore core(small_config(8, 8));
  // 8 x 2 x 8 = 128 ops/sample at 8 GS/s = 1.024 TOPS.
  EXPECT_NEAR(core.throughput_ops() / 1e12, 1.024, 1e-9);
}

TEST(TensorCore, RejectsBadShapes) {
  EXPECT_THROW(TensorCore(small_config(16, 15)), std::invalid_argument);
  TensorCore core;
  EXPECT_THROW(core.multiply(std::vector<double>(15, 0.5)),
               std::invalid_argument);
  std::vector<std::vector<std::uint32_t>> bad(3);
  EXPECT_THROW(core.load_weights(bad), std::invalid_argument);
  Matrix w(16, 16, 2.0);  // out of [0, 1]
  EXPECT_THROW(core.load_weights_normalized(w), std::invalid_argument);
}

}  // namespace
