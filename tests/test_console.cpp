// Operator console tests: the SCPI grammar, the command surface against a
// live serving stack, and the CI golden-transcript contract — the committed
// demo script replayed at several host thread counts must produce output
// byte-identical to tests/golden/console_transcript.txt.  On divergence the
// test writes console_transcript.txt.actual next to the golden for diffing.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "console/console.hpp"
#include "console/demo.hpp"
#include "console/scpi.hpp"

namespace {

using namespace ptc;
using console::Console;
using console::DemoScenario;
using console::ScpiCommand;
using console::StreamOptions;

std::string tests_dir() {
  const std::string self = __FILE__;
  return self.substr(0, self.find_last_of('/'));
}

std::string golden_transcript_path() {
  return tests_dir() + "/golden/console_transcript.txt";
}

std::string demo_script_path() {
  // The script CI runs through tools/ptc_console — the test replays the
  // committed file, not a copy, so tool and test can never drift apart.
  const std::string self = tests_dir();
  return self.substr(0, self.find_last_of('/')) + "/tools/console_demo.scpi";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- SCPI grammar -----------------------------------------------------------

TEST(Scpi, ShortAndLongFormsMatchCaseInsensitively) {
  EXPECT_TRUE(console::mnemonic_matches("MEAS", "MEASure"));
  EXPECT_TRUE(console::mnemonic_matches("meas", "MEASure"));
  EXPECT_TRUE(console::mnemonic_matches("MEASU", "MEASure"));
  EXPECT_TRUE(console::mnemonic_matches("Measure", "MEASure"));
  // Shorter than the short form, or past the long form, or diverging.
  EXPECT_FALSE(console::mnemonic_matches("MEA", "MEASure"));
  EXPECT_FALSE(console::mnemonic_matches("MEASURES", "MEASure"));
  EXPECT_FALSE(console::mnemonic_matches("MEAT", "MEASure"));
  EXPECT_FALSE(console::mnemonic_matches("", "MEASure"));
}

TEST(Scpi, SpecWithNoTailIsExact) {
  EXPECT_TRUE(console::mnemonic_matches("snap", "SNAPshot"));
  EXPECT_TRUE(console::mnemonic_matches("HELP", "HELP"));
  EXPECT_FALSE(console::mnemonic_matches("HEL", "HELP"));
  EXPECT_FALSE(console::mnemonic_matches("HELPS", "HELP"));
}

TEST(Scpi, IndexedMnemonicParsesDecimalSuffix) {
  std::size_t index = 99;
  EXPECT_TRUE(console::mnemonic_index("CORE2", "CORE", &index));
  EXPECT_EQ(index, 2u);
  EXPECT_TRUE(console::mnemonic_index("core15", "CORE", &index));
  EXPECT_EQ(index, 15u);
  EXPECT_FALSE(console::mnemonic_index("CORE", "CORE", &index));   // no digit
  EXPECT_FALSE(console::mnemonic_index("CORE2X", "CORE", &index));  // tail junk
  EXPECT_FALSE(console::mnemonic_index("BUS2", "CORE", &index));
}

TEST(Scpi, ParseSplitsHeaderQueryAndArgs) {
  ScpiCommand command;
  std::string error;
  ASSERT_TRUE(console::parse_scpi("  meas:lat?  P99, mobile ", &command,
                                  &error));
  ASSERT_EQ(command.mnemonics.size(), 2u);
  EXPECT_EQ(command.mnemonics[0], "meas");
  EXPECT_EQ(command.mnemonics[1], "lat");
  EXPECT_TRUE(command.query);
  ASSERT_EQ(command.args.size(), 2u);
  EXPECT_EQ(command.args[0], "P99");
  EXPECT_EQ(command.args[1], "mobile");
}

TEST(Scpi, CommentsAndBlankLinesParseEmpty) {
  ScpiCommand command;
  std::string error;
  ASSERT_TRUE(console::parse_scpi("# a comment", &command, &error));
  EXPECT_TRUE(command.empty());
  ASSERT_TRUE(console::parse_scpi("   ", &command, &error));
  EXPECT_TRUE(command.empty());
  ASSERT_TRUE(console::parse_scpi("SNAP? ; trailing comment", &command,
                                  &error));
  ASSERT_EQ(command.mnemonics.size(), 1u);
  EXPECT_TRUE(command.query);
}

TEST(Scpi, MalformedHeadersAreRejected) {
  ScpiCommand command;
  std::string error;
  EXPECT_FALSE(console::parse_scpi(":LAT?", &command, &error));
  EXPECT_FALSE(console::parse_scpi("MEAS::LAT?", &command, &error));
  EXPECT_FALSE(console::parse_scpi("MEAS:?", &command, &error));
  EXPECT_FALSE(error.empty());
}

// --- console command surface ------------------------------------------------

TEST(Console, UnknownCommandQueuesSystemError) {
  DemoScenario demo(1);
  Console console = demo.make_console();
  const std::string reply = console.eval("BOGUS:THING?");
  EXPECT_EQ(reply.rfind("ERR:", 0), 0u) << reply;
  // SYST:ERR? pops the queued message, then reports an empty queue.
  EXPECT_NE(console.eval("SYST:ERR?"), "0,\"No error\"");
  EXPECT_EQ(console.eval("SYST:ERR?"), "0,\"No error\"");
}

TEST(Console, QueriesBeforeAnyRunAnswerEmptyNotCrash) {
  DemoScenario demo(1);
  Console console = demo.make_console();
  // No run yet: scalar stats read as zero, tenant queries find nobody.
  EXPECT_EQ(console.eval("MEAS:LAT? P99"), "0");
  EXPECT_EQ(console.eval("TEN:LIST?"), "none");
  EXPECT_EQ(console.eval("TEN:COST? mobile").rfind("ERR:", 0), 0u);
}

TEST(Console, ServeRunPopulatesReportAndTenants) {
  DemoScenario demo(1);
  Console console = demo.make_console();
  const std::string run = console.eval("SERVE:RUN?");
  EXPECT_EQ(run.rfind("OK ", 0), 0u) << run;
  EXPECT_EQ(console.eval("TEN:LIST?"), "(fleet),embedded,mobile");
  EXPECT_EQ(console.eval("TEN:COST? nobody").rfind("ERR:", 0), 0u);
  // The fleet row answers unquoted, parens and all.
  const std::string fleet = console.eval("TEN:COST? (fleet)");
  EXPECT_EQ(fleet.rfind("tenant=(fleet)", 0), 0u) << fleet;
}

TEST(Console, TokenRunPopulatesTokenReportAndChatTenants) {
  DemoScenario demo(1);
  Console console = demo.make_console();
  const std::string run = console.eval("TOK:RUN?");
  EXPECT_EQ(run.rfind("OK ", 0), 0u) << run;
  // The chat tenants answer tenant queries with live token/KV figures.
  EXPECT_EQ(console.eval("TEN:LIST?"), "chat-free,chat-pro");
  const std::string cost = console.eval("TEN:COST? chat-pro");
  EXPECT_EQ(cost.rfind("tenant=chat-pro", 0), 0u) << cost;
  EXPECT_NE(cost.find(" tokens="), std::string::npos) << cost;
  EXPECT_NE(cost.find(" kv_row_s="), std::string::npos) << cost;
  // SNAP? grows the token-serving summary once a token run exists.
  const std::string snap = console.eval("SNAP?");
  EXPECT_NE(snap.find(" token_steps="), std::string::npos) << snap;
  EXPECT_NE(snap.find(" kv_peak_rows="), std::string::npos) << snap;
  // A batch run afterwards lists both tenant families.
  console.eval("SERVE:RUN?");
  EXPECT_EQ(console.eval("TEN:LIST?"),
            "(fleet),embedded,mobile,chat-free,chat-pro");
}

TEST(Console, RecalibrateActsOnTheLiveFleet) {
  DemoScenario demo(1);
  Console console = demo.make_console();
  console.eval("SERVE:RUN?");  // drift the fleet
  const std::string reply = console.eval("RECAL");
  EXPECT_EQ(reply.rfind("OK", 0), 0u) << reply;
  // A fresh re-lock pins every heater back on resonance.
  EXPECT_EQ(console.eval("FLEET:DETUN?"), "0");
}

TEST(Console, FaultDrillInjectsEvictsClearsAndReadmits) {
  DemoScenario demo(1);
  Console console = demo.make_console();
  EXPECT_EQ(console.eval("FAULT?"),
            "injected=0 evicted=0 active=4 health=OK,OK,OK,OK");

  // Break core 2 hard: the triggered self-test classifies it FAILED.
  const std::string inject = console.eval("FAULT:INJ DEADRINGS 2 64");
  EXPECT_EQ(inject.rfind("OK core=2 kind=DEADRINGS health=FAILED", 0), 0u)
      << inject;
  EXPECT_NE(inject.find("downtime_s="), std::string::npos);

  const std::string evict = console.eval("FAULT:EVIC 2");
  EXPECT_EQ(evict, "OK evicted=2 active=3");
  EXPECT_EQ(console.eval("FAULT?"),
            "injected=1 evicted=1 active=3 health=OK,OK,FAILED(evicted),OK");

  // A FAILED core cannot rejoin the rotation until it is repaired.
  EXPECT_EQ(console.eval("FAULT:READ 2").rfind("ERR:", 0), 0u);
  const std::string clear = console.eval("FAULT:CLE 2");
  EXPECT_EQ(clear, "OK core=2 health=OK evicted=1");
  EXPECT_EQ(console.eval("FAULT:READ 2"), "OK readmitted=2 active=4");
  console.eval("SYST:ERR?");  // drain the queued readmit refusal
  EXPECT_EQ(console.eval("SYST:ERR?"), "0,\"No error\"");
}

TEST(Console, FaultCommandsRejectBadArguments) {
  DemoScenario demo(1);
  Console console = demo.make_console();
  EXPECT_EQ(console.eval("FAULT").rfind("ERR:", 0), 0u);  // query-only
  EXPECT_EQ(console.eval("FAULT:INJ").rfind("ERR:", 0), 0u);
  EXPECT_EQ(console.eval("FAULT:INJ SOLAR 0").rfind("ERR:", 0), 0u);
  EXPECT_EQ(console.eval("FAULT:INJ DEADRINGS").rfind("ERR:", 0), 0u);
  EXPECT_EQ(console.eval("FAULT:INJ DEADRINGS 99").rfind("ERR:", 0), 0u);
  EXPECT_EQ(console.eval("FAULT:INJ DEADRINGS x").rfind("ERR:", 0), 0u);
  EXPECT_EQ(console.eval("FAULT:INJ ADC 0 9999").rfind("ERR:", 0), 0u);
  EXPECT_EQ(console.eval("FAULT:EVIC 99").rfind("ERR:", 0), 0u);
  EXPECT_EQ(console.eval("FAULT:READ 0").rfind("ERR:", 0), 0u);  // not evicted
  EXPECT_EQ(console.eval("FAULT:CLE").rfind("ERR:", 0), 0u);

  // Evicting down to one core is allowed; the last core is not.
  EXPECT_EQ(console.eval("FAULT:EVIC 0"), "OK evicted=0 active=3");
  EXPECT_EQ(console.eval("FAULT:EVIC 0").rfind("ERR:", 0), 0u);  // twice
  EXPECT_EQ(console.eval("FAULT:EVIC 1"), "OK evicted=1 active=2");
  EXPECT_EQ(console.eval("FAULT:EVIC 2"), "OK evicted=2 active=1");
  EXPECT_EQ(console.eval("FAULT:EVIC 3").rfind("ERR:", 0), 0u);  // last one
}

TEST(Console, ServeRunStillWorksOnAnEvictedFleet) {
  DemoScenario demo(1);
  Console console = demo.make_console();
  console.eval("FAULT:INJ DEADRINGS 1 64");
  console.eval("FAULT:EVIC 1");
  const std::string run = console.eval("SERVE:RUN?");
  EXPECT_EQ(run.rfind("OK ", 0), 0u) << run;
  // The scenario attaches no fault schedule, so console-injected state
  // survives the run and SNAP? reports a clean (no-shed) serving pass.
  const std::string snap = console.eval("SNAP?");
  EXPECT_NE(snap.find(" shed=0"), std::string::npos) << snap;
  EXPECT_NE(snap.find(" availability=1"), std::string::npos) << snap;
  EXPECT_EQ(console.eval("FAULT?").rfind("injected=1 evicted=1 active=3", 0),
            0u);
}

TEST(Console, ExitStopsTheStreamAndCountsErrors) {
  DemoScenario demo(1);
  Console console = demo.make_console();
  std::istringstream in("NOPE?\nSNAP?\nEXIT\nSNAP?\n");
  std::ostringstream out;
  const std::size_t errors = console.run_stream(in, out);
  EXPECT_EQ(errors, 1u);
  EXPECT_TRUE(console.exit_requested());
  // The post-EXIT line is never evaluated.
  EXPECT_EQ(out.str().find("SNAP?"), std::string::npos);
}

// --- golden transcript ------------------------------------------------------

std::string transcript_for(std::size_t threads) {
  DemoScenario demo(threads);
  Console console = demo.make_console();
  std::istringstream in(read_file(demo_script_path()));
  std::ostringstream out;
  StreamOptions options;
  options.echo = true;  // matches ptc_console --script
  const std::size_t errors = console.run_stream(in, out, options);
  EXPECT_EQ(errors, 0u) << "demo script raised console errors";
  return out.str();
}

TEST(Console, TranscriptIsByteIdenticalAcrossHostThreadCounts) {
  // The console answers only from modeled time and seeded state, so the
  // host thread-pool size must not leak into a single output byte.
  const std::string t1 = transcript_for(1);
  EXPECT_EQ(t1, transcript_for(2));
  EXPECT_EQ(t1, transcript_for(8));
}

TEST(Console, TranscriptMatchesCommittedGolden) {
  const std::string actual = transcript_for(1);
  ASSERT_FALSE(actual.empty());
  const std::string golden = read_file(golden_transcript_path());
  if (actual != golden) {
    const std::string actual_path =
        golden_transcript_path() + ".actual";  // next to the golden
    std::ofstream(actual_path) << actual;
    FAIL() << "console transcript diverged from "
              "tests/golden/console_transcript.txt; wrote "
           << actual_path
           << " — review the diff, then copy it over the golden file if the "
              "change is intended";
  }
}

}  // namespace
