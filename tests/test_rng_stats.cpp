#include <gtest/gtest.h>

#include "common/interp.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace {

using namespace ptc;

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool any_differ = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.next_u64() != c.next_u64()) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(Rng, UniformRangeAndMoments) {
  Rng rng(7);
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
  EXPECT_NEAR(stddev(xs), 0.2887, 0.01);
}

TEST(Rng, UniformIntervalRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    ASSERT_GE(x, -2.0);
    ASSERT_LT(x, 3.0);
  }
  EXPECT_THROW(rng.uniform(3.0, -2.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(21);
  std::vector<double> xs(40000);
  for (auto& x : xs) x = rng.normal(1.5, 2.0);
  EXPECT_NEAR(mean(xs), 1.5, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(3);
  std::size_t hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.02);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
}

TEST(Rng, ExponentialMomentsAndPositivity) {
  Rng rng(13);
  std::vector<double> xs(40000);
  for (auto& x : xs) {
    x = rng.exponential(4.0);
    ASSERT_GE(x, 0.0);
  }
  EXPECT_NEAR(mean(xs), 0.25, 0.005);    // mean = 1 / rate
  EXPECT_NEAR(stddev(xs), 0.25, 0.005);  // sigma = 1 / rate
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ExponentialSequenceIsPinned) {
  // Regression anchor for the Poisson arrival sampling: the serve layer's
  // request traces are reproducible only while this sequence holds.
  Rng rng(42);
  const double golden[6] = {0.043794665291708786, 0.2381961975393862,
                            0.56978497592693877,  1.2930907304934212,
                            2.4020492950781831,   0.7342719152251117};
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(rng.exponential(2.0), golden[i], 1e-12) << "draw " << i;
  }
}

TEST(Rng, BelowCoversRangeWithoutBias) {
  Rng rng(5);
  std::vector<std::size_t> counts(7, 0);
  for (int i = 0; i < 14000; ++i) ++counts[rng.below(7)];
  for (auto c : counts) EXPECT_NEAR(static_cast<double>(c), 2000.0, 250.0);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(RngSplit, ChildStreamsArePinnedAcrossPlatforms) {
  // Regression anchor for the per-core seeding discipline: these constants
  // must never change, or every multi-core Monte-Carlo variation run loses
  // reproducibility against recorded results.
  const Rng parent(42);
  const std::uint64_t golden[3][4] = {
      {0x2c864d845e390bbaull, 0xa13ef7b2dace8faaull, 0x78754c2afaaf7566ull,
       0x2fc0d073127d7e86ull},  // stream 0
      {0xbae27b300e60353eull, 0x2ce73fb75e354df4ull, 0x93f48078c8530ba2ull,
       0x0599dcc8cbea20f8ull},  // stream 1
      {0xffa2487fdd970270ull, 0xefa866d84353ee5eull, 0x7ac54da406f8738bull,
       0x159c0cbbf290bb72ull},  // stream 7
  };
  const std::uint64_t streams[3] = {0, 1, 7};
  for (int s = 0; s < 3; ++s) {
    Rng child = parent.split(streams[s]);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(child.next_u64(), golden[s][i])
          << "stream " << streams[s] << " draw " << i;
    }
  }
}

TEST(RngSplit, DoesNotAdvanceTheParent) {
  Rng split_parent(42);
  (void)split_parent.split(3);
  (void)split_parent.split(4);
  Rng fresh(42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(split_parent.next_u64(), fresh.next_u64());
  }
}

TEST(RngSplit, StreamsAreDecorrelatedAndDeterministic) {
  const Rng parent(7);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  Rng a_again = parent.split(0);
  bool any_differ = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a.next_u64();
    if (va != b.next_u64()) any_differ = true;
    EXPECT_EQ(va, a_again.next_u64());
  }
  EXPECT_TRUE(any_differ);

  // Child moments stay healthy (uniformity survives the derivation).
  Rng child = parent.split(1234);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = child.uniform();
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
}

TEST(Interp, LerpAndLinspace) {
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.25), 2.5);
  const auto grid = linspace(1.0, 2.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 1.0);
  EXPECT_DOUBLE_EQ(grid.back(), 2.0);
  EXPECT_DOUBLE_EQ(grid[2], 1.5);
  EXPECT_EQ(linspace(3.0, 4.0, 1).size(), 1u);
}

TEST(Interp, TableLookupClampsAndInterpolates) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(interp_table(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_table(xs, ys, 1.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_table(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp_table(xs, ys, 5.0), 0.0);
  EXPECT_THROW(interp_table({1.0}, {2.0}, 0.0), std::invalid_argument);
}

TEST(Statistics, BasicDescriptives) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.29099, 1e-5);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
  EXPECT_NEAR(rms(xs), 2.7386, 1e-4);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Statistics, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(0.1 * i);
    ys.push_back(3.0 * 0.1 * i - 1.0);
  }
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Statistics, LinearFitR2DropsWithNoise) {
  Rng rng(11);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(0.05 * i);
    ys.push_back(2.0 * xs.back() + rng.normal(0.0, 1.0));
  }
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.2);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.8);
}

TEST(Statistics, HistogramBucketsAndClamping) {
  const std::vector<double> xs{-1.0, 0.1, 0.2, 0.55, 0.9, 2.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 3u);  // -1 clamps into the first bucket
  EXPECT_EQ(h[1], 3u);  // 2.0 clamps into the last
}

}  // namespace
