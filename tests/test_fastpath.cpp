// Calibrated fast path vs spectral physics walk: the fast path linearizes
// the tensor core at weight-load time (cached ring-chain gains, canonical
// summation order) and must be BIT-identical to the physics path — pinned
// here for every encoding, readout mode, fleet size, and model lowering the
// matmul pipeline supports, plus the weight-plan cache contract the graph
// executor and serving layer lean on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/random_matrix.hpp"
#include "common/rng.hpp"
#include "core/tensor_core.hpp"
#include "graph/compile.hpp"
#include "graph/executor.hpp"
#include "graph/ir.hpp"
#include "nn/backend.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/tiling.hpp"
#include "runtime/accelerator.hpp"
#include "runtime/backend.hpp"

namespace {

using namespace ptc;
using namespace ptc::nn;

core::TensorCoreConfig core_config(bool fast_path) {
  core::TensorCoreConfig config;
  config.fast_path = fast_path;
  return config;
}

TEST(FastPath, ArmsAtWeightLoad) {
  core::TensorCore core(core_config(true));
  EXPECT_FALSE(core.fast_path_active());
  Rng rng(1);
  core.load_weights_normalized(random_activations(16, 16, rng));
  EXPECT_TRUE(core.fast_path_active());

  core::TensorCore physics(core_config(false));
  physics.load_weights_normalized(random_activations(16, 16, rng));
  EXPECT_FALSE(physics.fast_path_active());
}

TEST(FastPath, AnalogBatchBitIdentical) {
  core::TensorCore fast(core_config(true));
  core::TensorCore physics(core_config(false));
  Rng w_rng(2);
  const Matrix w = random_activations(16, 16, w_rng);
  fast.load_weights_normalized(w);
  physics.load_weights_normalized(w);

  Rng x_rng(3);
  const Matrix x = random_activations(64, 16, x_rng);
  EXPECT_EQ(fast.multiply_analog_batch(x).max_abs_diff(
                physics.multiply_analog_batch(x)),
            0.0);

  // Single-sample API dispatches through the same replay.
  std::vector<double> input(16, 0.0);
  for (std::size_t c = 0; c < 16; ++c) input[c] = x(0, c);
  const auto a = fast.multiply_analog(input);
  const auto b = physics.multiply_analog(input);
  for (std::size_t r = 0; r < a.size(); ++r) EXPECT_EQ(a[r], b[r]);
}

TEST(FastPath, QuantizedBatchBitIdenticalAndAccounted) {
  core::TensorCore fast(core_config(true));
  core::TensorCore physics(core_config(false));
  Rng w_rng(4);
  const Matrix w = random_activations(16, 16, w_rng);
  fast.load_weights_normalized(w);
  physics.load_weights_normalized(w);

  Rng x_rng(5);
  const Matrix x = random_activations(40, 16, x_rng);
  EXPECT_EQ(fast.multiply_batch(x).max_abs_diff(physics.multiply_batch(x)),
            0.0);
  // Every batch row burns one ADC sample window, exactly like multiply().
  EXPECT_EQ(fast.samples_processed(), 40u);
  EXPECT_EQ(physics.samples_processed(), 40u);
}

TEST(FastPath, RecalibratesWhenWeightsChange) {
  core::TensorCore fast(core_config(true));
  core::TensorCore physics(core_config(false));
  Rng rng(6);
  const Matrix w1 = random_activations(16, 16, rng);
  const Matrix w2 = random_activations(16, 16, rng);
  const Matrix x = random_activations(8, 16, rng);

  fast.load_weights_normalized(w1);
  physics.load_weights_normalized(w1);
  const Matrix y1 = fast.multiply_analog_batch(x);
  EXPECT_EQ(y1.max_abs_diff(physics.multiply_analog_batch(x)), 0.0);

  fast.load_weights_normalized(w2);
  physics.load_weights_normalized(w2);
  const Matrix y2 = fast.multiply_analog_batch(x);
  EXPECT_EQ(y2.max_abs_diff(physics.multiply_analog_batch(x)), 0.0);
  EXPECT_GT(y2.max_abs_diff(y1), 0.0);  // the gains really changed

  // Reloading w1 recalls the memoized calibration — still bit-identical.
  fast.load_weights_normalized(w1);
  physics.load_weights_normalized(w1);
  EXPECT_EQ(fast.multiply_analog_batch(x).max_abs_diff(y1), 0.0);
  EXPECT_EQ(physics.multiply_analog_batch(x).max_abs_diff(y1), 0.0);
}

/// Backend-level identity across encodings and readout modes, including
/// non-multiple-of-16 shapes and batch 1.
void check_backend_identity(bool differential, bool quantize, std::size_t s,
                            std::size_t k, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  const Matrix x = random_activations(s, k, rng);
  const Matrix w = random_signed(k, m, rng);

  PhotonicBackendOptions options;
  options.differential_weights = differential;
  options.quantize_output = quantize;

  core::TensorCore fast_core(core_config(true));
  core::TensorCore physics_core(core_config(false));
  PhotonicBackend fast(fast_core, options);
  PhotonicBackend physics(physics_core, options);
  EXPECT_EQ(fast.matmul(x, w).max_abs_diff(physics.matmul(x, w)), 0.0)
      << "differential=" << differential << " quantize=" << quantize << " "
      << s << "x" << k << "*" << k << "x" << m;
}

TEST(FastPath, BackendBitIdenticalAllEncodingsAndReadouts) {
  for (const bool differential : {false, true}) {
    for (const bool quantize : {false, true}) {
      check_backend_identity(differential, quantize, 7, 20, 18, 100);
      check_backend_identity(differential, quantize, 1, 16, 16, 101);
    }
  }
}

TEST(FastPath, FleetBitIdenticalToPhysicsFleet) {
  Rng rng(7);
  const Matrix x = random_activations(12, 40, rng);
  const Matrix w = random_signed(40, 24, rng);

  for (const bool differential : {false, true}) {
    PhotonicBackendOptions options;
    options.differential_weights = differential;

    runtime::AcceleratorConfig fast_config{.cores = 4};
    runtime::AcceleratorConfig physics_config{.cores = 4};
    physics_config.core.fast_path = false;
    runtime::Accelerator fast(fast_config);
    runtime::Accelerator physics(physics_config);
    EXPECT_EQ(fast.matmul(x, w, options).max_abs_diff(
                  physics.matmul(x, w, options)),
              0.0);
  }
}

TEST(FastPath, MlpForwardBitIdenticalEndToEnd) {
  Rng rng(8);
  Mlp model(12, 10, 4, rng);
  Rng data_rng(9);
  const Matrix x = random_activations(9, 12, data_rng);

  PhotonicBackendOptions options;
  options.differential_weights = true;

  core::TensorCore fast_core(core_config(true));
  core::TensorCore physics_core(core_config(false));
  PhotonicBackend fast(fast_core, options);
  PhotonicBackend physics(physics_core, options);
  EXPECT_EQ(model.forward(fast, x).max_abs_diff(model.forward(physics, x)),
            0.0);

  runtime::AcceleratorConfig fleet_config{.cores = 3};
  fleet_config.core.fast_path = false;
  runtime::Accelerator physics_fleet(fleet_config);
  runtime::AcceleratorBackend fleet(physics_fleet, options);
  EXPECT_EQ(model.forward(fast, x).max_abs_diff(model.forward(fleet, x)), 0.0);
}

TEST(FastPath, CnnGraphBitIdenticalOnTheFleet) {
  Rng rng(10);
  graph::Graph g;
  const auto in = g.input(graph::Shape{{8, 8, 1}});
  auto v = g.conv2d(in, random_signed(9, 4, rng), 3);
  v = g.bias(v, std::vector<double>(4, 0.05));
  v = g.relu(v);
  v = g.maxpool(v, 2);
  v = g.flatten(v);
  v = g.matmul(v, random_signed(36, 5, rng));
  g.softmax(v);
  const graph::CompiledGraph compiled = graph::compile(g);

  Rng data_rng(11);
  const Matrix x = random_activations(4, 64, data_rng);

  PhotonicBackendOptions options;
  options.differential_weights = true;

  runtime::AcceleratorConfig fast_config{.cores = 4};
  runtime::AcceleratorConfig physics_config{.cores = 4};
  physics_config.core.fast_path = false;
  runtime::Accelerator fast_fleet(fast_config);
  runtime::Accelerator physics_fleet(physics_config);
  runtime::AcceleratorBackend fast(fast_fleet, options);
  runtime::AcceleratorBackend physics(physics_fleet, options);
  EXPECT_EQ(graph::run(compiled, fast, x).max_abs_diff(
                graph::run(compiled, physics, x)),
            0.0);
}

TEST(PlanCache, ReusesPlansAndRebuildsOnContentChange) {
  Rng rng(12);
  Matrix w = random_signed(20, 20, rng);

  WeightPlanCache cache;
  const auto p1 = cache.get(w, 16, 16, false);
  const auto p2 = cache.get(w, 16, 16, false);
  EXPECT_EQ(p1.get(), p2.get());  // same plan object, no rebuild
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(p1->passes.size(), 4u);
  EXPECT_EQ(p1->encoded.size(), 4u);

  // A different geometry or encoding is a different plan.
  cache.get(w, 16, 16, true);
  EXPECT_EQ(cache.builds(), 2u);

  // Changing the weight contents must invalidate: the cache is keyed by
  // content, so a stale plan (stale mapping, stale encoded blocks) can
  // never be served for updated weights.
  w(3, 3) = 5.0;  // new max |w|: the mapping scale must change too
  const auto p3 = cache.get(w, 16, 16, false);
  EXPECT_EQ(cache.builds(), 3u);
  EXPECT_NE(p3.get(), p1.get());
  EXPECT_NE(p3->mapping.scale, p1->mapping.scale);

  cache.invalidate();
  cache.get(w, 16, 16, false);
  EXPECT_EQ(cache.builds(), 4u);
}

TEST(PlanCache, CachedMatmulBitIdenticalToUncached) {
  Rng rng(13);
  const Matrix x = random_activations(5, 20, rng);
  const Matrix w = random_signed(20, 20, rng);

  PhotonicBackendOptions options;
  core::TensorCore core_a(core_config(true));
  core::TensorCore core_b(core_config(true));
  PhotonicBackend cached(core_a, options);
  PhotonicBackend fresh(core_b, options);

  WeightPlanCache cache;
  const Matrix via_cache = cached.matmul_cached(x, w, cache);
  const Matrix direct = fresh.matmul(x, w);
  EXPECT_EQ(via_cache.max_abs_diff(direct), 0.0);
  // Second call through the same cache: no rebuild, same bits.
  EXPECT_EQ(cached.matmul_cached(x, w, cache).max_abs_diff(direct), 0.0);
  EXPECT_EQ(cache.builds(), 1u);
}

TEST(PlanCache, MlpTrainingRefreshesCompiledPlans) {
  // Training rewrites the weights and relowers the schedule; the rebuilt
  // step caches must serve plans for the *new* weights — pinned by
  // comparing against an uncached float forward after the update.
  Rng rng(14);
  Mlp model(6, 8, 3, rng);
  Dataset data;
  data.inputs = random_activations(24, 6, rng);
  data.labels.resize(24);
  for (std::size_t i = 0; i < data.labels.size(); ++i) {
    data.labels[i] = i % 3;
  }

  FloatBackend reference;
  const Matrix x = random_activations(5, 6, rng);
  const Matrix before = model.forward(reference, x);

  Rng train_rng(15);
  model.train_epoch(data, 0.05, 8, train_rng);
  const Matrix after = model.forward(reference, x);
  EXPECT_GT(after.max_abs_diff(before), 0.0);

  // The compiled schedule (with its refreshed plan caches) must agree with
  // the raw layer math over the new weights.
  Matrix manual = matmul(x, model.layer1().w);
  for (std::size_t s = 0; s < manual.rows(); ++s)
    for (std::size_t c = 0; c < manual.cols(); ++c) {
      manual(s, c) += model.layer1().b[c];
      manual(s, c) = std::max(0.0, manual(s, c));
    }
  manual = matmul(manual, model.layer2().w);
  for (std::size_t s = 0; s < manual.rows(); ++s)
    for (std::size_t c = 0; c < manual.cols(); ++c)
      manual(s, c) += model.layer2().b[c];
  EXPECT_EQ(after.max_abs_diff(manual), 0.0);
}

}  // namespace
