#include <gtest/gtest.h>

#include <cmath>

#include "circuit/amplifier.hpp"
#include "circuit/comparator.hpp"
#include "circuit/driver.hpp"
#include "circuit/inverter.hpp"
#include "circuit/sample_hold.hpp"
#include "circuit/tia.hpp"

namespace {

using namespace ptc;
using namespace ptc::circuit;

TEST(Inverter, StaticVtc) {
  const Inverter inv;
  EXPECT_NEAR(inv.transfer(0.0), 1.8, 1e-3);
  EXPECT_NEAR(inv.transfer(1.8), 0.0, 1e-3);
  EXPECT_NEAR(inv.transfer(0.9), 0.9, 1e-9);  // trip point
  EXPECT_TRUE(inv.logic_in(1.2));
  EXPECT_FALSE(inv.logic_in(0.3));
}

TEST(Inverter, GainAtTripPoint) {
  InverterConfig config;
  config.gain = 20.0;
  const Inverter inv(config);
  const double dv = 1e-4;
  const double slope = (inv.transfer(0.9 + dv) - inv.transfer(0.9 - dv)) / (2 * dv);
  EXPECT_NEAR(slope, -20.0, 0.1);
}

TEST(Inverter, SwitchingEnergyScale) {
  const Inverter inv;
  // 0.5 * 2 fF * 1.8^2 * 1.2 = 3.9 fJ.
  EXPECT_NEAR(inv.switching_energy(), 3.89e-15, 0.05e-15);
}

TEST(RingDriver, DigitalRegeneration) {
  RingDriver driver;
  // Input above VDD/2 drives the output to the full rail.
  for (int i = 0; i < 200; ++i) driver.step(1.0, 1e-12);
  EXPECT_NEAR(driver.output(), 1.8, 1e-3);
  for (int i = 0; i < 200; ++i) driver.step(0.3, 1e-12);
  EXPECT_NEAR(driver.output(), 0.0, 1e-3);
}

TEST(RingDriver, AnalogFollowerMode) {
  RingDriverConfig config;
  config.digital = false;
  RingDriver driver(config);
  for (int i = 0; i < 300; ++i) driver.step(1.1, 1e-12);
  EXPECT_NEAR(driver.output(), 1.1, 1e-3);
}

TEST(RingDriver, EnergyPerFullSwing) {
  RingDriver driver;
  for (int i = 0; i < 500; ++i) driver.step(1.8, 1e-12);
  // 0.5 * C * Vdd * dV = 0.5 * 85 fF * 1.8 * 1.8 = 0.1377 pJ.
  EXPECT_NEAR(driver.consumed_energy(), 0.1377e-12, 0.002e-12);
  EXPECT_NEAR(driver.switching_energy(), 0.1377e-12, 0.002e-12);
}

TEST(LinearTia, GainAndClamping) {
  const LinearTia tia;
  EXPECT_NEAR(tia.output(100e-6), 0.4, 1e-9);  // 4 kOhm * 100 uA
  EXPECT_DOUBLE_EQ(tia.output(10.0), 1.8);     // clamps at the rail
  EXPECT_DOUBLE_EQ(tia.output(-1e-3), 0.0);
}

TEST(LinearTia, BandwidthLimitsStep) {
  LinearTia tia;
  // At 42 GHz BW, tau ~ 3.8 ps; a 1 ps step reaches ~23%.
  tia.step(100e-6, 1e-12);
  EXPECT_GT(tia.value(), 0.05);
  EXPECT_LT(tia.value(), 0.2);
}

TEST(InverterTia, InvertsAroundBias) {
  const InverterTia tia;
  EXPECT_NEAR(tia.output(0.9), 0.9, 1e-12);
  EXPECT_GT(tia.output(0.85), 0.9);   // input below bias -> output above
  EXPECT_LT(tia.output(0.95), 0.9);
  EXPECT_DOUBLE_EQ(tia.output(0.0), 1.8);  // clips
  EXPECT_DOUBLE_EQ(tia.output(1.8), 0.0);
}

TEST(VoltageAmplifier, EvenStagesNonInverting) {
  const VoltageAmplifier amp;  // 2 stages
  EXPECT_GT(amp.output(0.95), 0.9);   // above bias stays above (x36 gain)
  EXPECT_LT(amp.output(0.85), 0.9);
  EXPECT_DOUBLE_EQ(amp.output(1.2), 1.8);  // saturates
}

TEST(VoltageAmplifier, TransientSettlesToStatic) {
  VoltageAmplifier amp;
  for (int i = 0; i < 200; ++i) amp.step(0.95, 0.5e-12);
  EXPECT_NEAR(amp.value(), amp.output(0.95), 1e-6);
  EXPECT_TRUE(amp.logic_value());
  amp.reset(0.9);
  EXPECT_NEAR(amp.value(), 0.9, 1e-12);
}

TEST(Comparator, DecisionsAndEnergy) {
  Comparator cmp;
  EXPECT_TRUE(cmp.decide(1.0, 0.5));
  EXPECT_FALSE(cmp.decide(0.4, 0.5));
  EXPECT_EQ(cmp.decision_count(), 2u);
  EXPECT_NEAR(cmp.consumed_energy(), 2 * 120e-15, 1e-18);
}

TEST(Comparator, OffsetFromRng) {
  ComparatorConfig config;
  config.offset_sigma = 10e-3;
  Rng rng(99);
  Comparator cmp(config, rng);
  EXPECT_NE(cmp.offset(), 0.0);
  EXPECT_LT(std::abs(cmp.offset()), 60e-3);  // within ~6 sigma
}

TEST(Comparator, NoisyDecisionsFlipNearThreshold) {
  ComparatorConfig config;
  config.noise_sigma = 5e-3;
  Comparator cmp(config);
  Rng rng(7);
  int highs = 0;
  for (int i = 0; i < 1000; ++i) {
    if (cmp.decide(0.5, 0.5, rng)) ++highs;
  }
  // Exactly at threshold, noise splits decisions roughly evenly.
  EXPECT_GT(highs, 350);
  EXPECT_LT(highs, 650);
}

TEST(SampleHold, TracksThenHolds) {
  SampleHold sh;
  for (int i = 0; i < 100; ++i) sh.step(1.2, true, 1e-12);
  EXPECT_NEAR(sh.value(), 1.2, 1e-3);
  const double held = sh.step(0.3, false, 1e-12);  // hold: input ignored
  EXPECT_NEAR(held, 1.2, 1e-2);
  for (int i = 0; i < 100; ++i) sh.step(0.3, false, 1e-12);
  EXPECT_NEAR(sh.value(), 1.2, 1e-2);  // droop is tiny over 100 ps
}

TEST(SampleHold, KtcNoiseOnHold) {
  SampleHoldConfig config;
  config.include_ktc_noise = true;
  config.hold_capacitance = 1e-15;  // exaggerate kT/C (~2 mV)
  Rng rng(3);
  std::vector<double> held;
  for (int trial = 0; trial < 200; ++trial) {
    SampleHold sh(config);
    sh.reset(1.0);
    for (int i = 0; i < 10; ++i) sh.step(1.0, true, 1e-12);
    held.push_back(sh.step(1.0, false, 1e-12, &rng));
  }
  double spread = 0.0;
  for (double h : held) spread = std::max(spread, std::abs(h - 1.0));
  EXPECT_GT(spread, 1e-4);  // noise present
  EXPECT_LT(spread, 2e-2);  // but bounded
}

}  // namespace
