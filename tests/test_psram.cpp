#include <gtest/gtest.h>

#include <cmath>

#include "core/psram_bitcell.hpp"

namespace {

using namespace ptc::core;

TEST(PsramBitcell, HoldsBothStatesUnderBias) {
  for (bool value : {false, true}) {
    PsramBitcell cell;
    cell.initialize(value);
    cell.hold(2e-9);
    EXPECT_EQ(cell.q(), value);
    EXPECT_TRUE(cell.is_stable());
  }
}

TEST(PsramBitcell, WriteOneFromZero) {
  PsramBitcell cell;
  cell.initialize(false);
  const auto result = cell.write(true);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(cell.q());
  // 20 GHz updates need settling within the 50 ps write slot.
  EXPECT_LT(result.settle_time, 50e-12);
}

TEST(PsramBitcell, WriteZeroFromOne) {
  PsramBitcell cell;
  cell.initialize(true);
  const auto result = cell.write(false);
  EXPECT_TRUE(result.success);
  EXPECT_FALSE(cell.q());
  EXPECT_LT(result.settle_time, 50e-12);
}

TEST(PsramBitcell, WriteEnergyMatchesPaper) {
  // Paper Sec. IV-A: ~0.5 pJ per switching event.
  PsramBitcell cell;
  cell.initialize(false);
  const auto result = cell.write(true);
  EXPECT_NEAR(result.total_energy() * 1e12, 0.5, 0.05);
  // Laser wall-plug share: 1 mW x 50 ps / 0.23 ~ 0.217 pJ.
  EXPECT_NEAR(result.laser_energy * 1e12, 0.217, 0.005);
}

TEST(PsramBitcell, BackToBackWritesAt20GHz) {
  PsramBitcell cell;
  cell.initialize(false);
  bool value = true;
  for (int i = 0; i < 8; ++i) {
    const auto result = cell.write(value);
    EXPECT_TRUE(result.success) << "write " << i;
    EXPECT_EQ(cell.q(), value);
    value = !value;
  }
}

TEST(PsramBitcell, RedundantWriteKeepsState) {
  PsramBitcell cell;
  cell.initialize(true);
  const auto result = cell.write(true);  // write the already-stored value
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(cell.q());
}

TEST(PsramBitcell, WeakWritePulseFailsToFlip) {
  // The write optical power must exceed the holding photocurrents
  // (paper Sec. II-A); a pulse at the bias level cannot flip the latch.
  PsramConfig config;
  config.write_power = 5e-6;  // well below the 1 mW nominal
  PsramBitcell cell(config);
  cell.initialize(false);
  const auto result = cell.write(true);
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(cell.q());
}

class WritePulseWidths : public ::testing::TestWithParam<double> {};

TEST_P(WritePulseWidths, FlipsAcrossPulseWidths) {
  PsramConfig config;
  config.write_pulse_width = GetParam();
  PsramBitcell cell(config);
  cell.initialize(false);
  const auto result = cell.write(true);
  EXPECT_TRUE(result.success);
}

INSTANTIATE_TEST_SUITE_P(Widths, WritePulseWidths,
                         ::testing::Values(30e-12, 50e-12, 100e-12));

TEST(PsramBitcell, LosesStateWithoutOpticalBias) {
  // pSRAM is volatile: remove the hold bias and leakage erases the state.
  PsramBitcell cell;
  cell.initialize(true);
  cell.hold(400e-9, /*bias_on=*/false);
  EXPECT_FALSE(cell.is_stable() && cell.q());
  EXPECT_LT(cell.q_voltage(), 0.2);
}

TEST(PsramBitcell, StateSurvivesWithBias) {
  PsramBitcell cell;
  cell.initialize(true);
  cell.hold(50e-9, /*bias_on=*/true);
  EXPECT_TRUE(cell.q());
  EXPECT_GT(cell.q_voltage(), 1.6);
}

TEST(PsramBitcell, RecoveryMarginIsHealthy) {
  PsramBitcell cell;
  cell.initialize(true);
  const double margin = cell.recovery_margin(0.02);
  // The positive-feedback latch should recover from sizable perturbations.
  EXPECT_GT(margin, 0.25);
  EXPECT_LE(margin, 0.9);
}

TEST(PsramBitcell, TracesRecordWriteWaveforms) {
  PsramBitcell cell;
  cell.initialize(false);
  ptc::sim::TraceSet traces;
  cell.write(true, &traces);
  ASSERT_TRUE(traces.contains("q"));
  ASSERT_TRUE(traces.contains("wbl"));
  // Q rises from 0 toward VDD during the write.
  EXPECT_LT(traces.get("q").values().front(), 0.2);
  EXPECT_GT(traces.get("q").final_value(), 1.6);
  // The WBL pulse has the configured 1 mW amplitude.
  EXPECT_NEAR(traces.get("wbl").max_value(), 1e-3, 1e-9);
  // QB falls complementarily.
  EXPECT_LT(traces.get("qb").final_value(), 0.2);
}

TEST(PsramBitcell, HoldWallPowerFromBiasLaser) {
  PsramBitcell cell;
  // -20 dBm = 10 uW at 0.23 wall plug ~ 43.5 uW.
  EXPECT_NEAR(cell.hold_wall_power() * 1e6, 43.5, 0.5);
}

TEST(PsramBitcell, RejectsBadConfig) {
  PsramConfig bad;
  bad.write_power = 0.0;
  EXPECT_THROW(PsramBitcell{bad}, std::invalid_argument);
  bad = {};
  bad.dt = 5e-12;  // too coarse for the stiff latch dynamics
  EXPECT_THROW(PsramBitcell{bad}, std::invalid_argument);
}

}  // namespace
